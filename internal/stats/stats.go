// Package stats provides the measurement primitives shared by the
// simulators and experiment drivers: counters, running means,
// histograms, time-weighted utilization trackers, and the ASCII table
// and series renderers the benches use to print paper-style output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a simple named event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Count returns the current value.
func (c *Counter) Count() uint64 { return c.n }

// Mean accumulates a running arithmetic mean with min/max.
type Mean struct {
	n        uint64
	sum      float64
	min, max float64
}

// Observe adds one sample.
func (m *Mean) Observe(v float64) {
	if m.n == 0 || v < m.min {
		m.min = v
	}
	if m.n == 0 || v > m.max {
		m.max = v
	}
	m.n++
	m.sum += v
}

// N returns the number of samples.
func (m *Mean) N() uint64 { return m.n }

// Moments returns the raw accumulator state — sample count, sum, min
// and max — so a Mean can be serialized and reconstructed losslessly.
func (m *Mean) Moments() (n uint64, sum, min, max float64) {
	return m.n, m.sum, m.min, m.max
}

// MeanFromMoments rebuilds a Mean from the state Moments reported.
func MeanFromMoments(n uint64, sum, min, max float64) Mean {
	return Mean{n: n, sum: sum, min: min, max: max}
}

// Sum returns the sum of all samples.
func (m *Mean) Sum() float64 { return m.sum }

// Value returns the mean, or zero with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Min returns the smallest sample, or zero with no samples.
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest sample, or zero with no samples.
func (m *Mean) Max() float64 { return m.max }

// Histogram counts samples in fixed-width bins over [lo, hi); samples
// outside the range land in saturating end bins.
type Histogram struct {
	lo, hi float64
	bins   []uint64
	n      uint64
	sum    float64
}

// NewHistogram returns a histogram with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, bins)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.n++
	h.sum += v
	i := int(float64(len(h.bins)) * (v - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the mean of all samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an approximate q-quantile (0 <= q <= 1) assuming
// samples are uniform within a bin.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := q * float64(h.n)
	var cum float64
	width := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.hi
}

// ExpHistogram counts samples in exponentially growing buckets — the
// shape latency distributions want, and the shape Prometheus histogram
// export expects: bucket i covers (bounds[i-1], bounds[i]], the last
// implicit bucket is unbounded. The zero value is not usable;
// construct with NewExpHistogram.
type ExpHistogram struct {
	bounds []float64
	counts []uint64
	n      uint64
	sum    float64
}

// NewExpHistogram returns a histogram whose finite bucket upper bounds
// are start, start*factor, ..., for n buckets (plus the implicit
// overflow bucket). start must be positive and factor > 1.
func NewExpHistogram(start, factor float64, n int) *ExpHistogram {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("stats: invalid exponential histogram shape")
	}
	bounds := make([]float64, n)
	b := start
	for i := range bounds {
		bounds[i] = b
		b *= factor
	}
	return &ExpHistogram{bounds: bounds, counts: make([]uint64, n+1)}
}

// Observe adds one sample.
func (h *ExpHistogram) Observe(v float64) {
	h.n++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// N returns the number of samples.
func (h *ExpHistogram) N() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *ExpHistogram) Sum() float64 { return h.sum }

// Mean returns the mean of all samples, or zero with none.
func (h *ExpHistogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Buckets returns the finite bucket upper bounds and the per-bucket
// counts; counts has one extra trailing element, the overflow bucket.
// Both slices are copies.
func (h *ExpHistogram) Buckets() (bounds []float64, counts []uint64) {
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// Clone returns an independent copy of the histogram.
func (h *ExpHistogram) Clone() *ExpHistogram {
	return &ExpHistogram{
		bounds: append([]float64(nil), h.bounds...),
		counts: append([]uint64(nil), h.counts...),
		n:      h.n,
		sum:    h.sum,
	}
}

// Merge folds o's samples into h. The two histograms must share the
// same bucket bounds (the same NewExpHistogram shape); merging
// mismatched shapes returns an error and leaves h unchanged. A nil or
// empty o merges as a no-op.
func (h *ExpHistogram) Merge(o *ExpHistogram) error {
	if o == nil || o.n == 0 {
		return nil
	}
	if len(o.bounds) != len(h.bounds) {
		return fmt.Errorf("stats: merging histograms with %d and %d buckets", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("stats: merging histograms with different bounds at bucket %d (%g vs %g)", i, b, o.bounds[i])
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	return nil
}

// HistSnapshot is the lossless serialized form of an ExpHistogram —
// what the cluster's metrics federation ships over the wire so the
// coordinator can Merge worker histograms into fleet aggregates.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; trailing overflow bucket
	N      uint64    `json:"n"`
	Sum    float64   `json:"sum"`
}

// Snapshot returns the histogram's serializable state (copies).
func (h *ExpHistogram) Snapshot() HistSnapshot {
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		N:      h.n,
		Sum:    h.sum,
	}
}

// FromSnapshot rebuilds an ExpHistogram from a snapshot, validating
// the invariants NewExpHistogram+Observe would have maintained —
// shape, strictly increasing positive bounds, and count consistency —
// so a malformed or hostile peer payload cannot poison a fleet merge.
func FromSnapshot(s HistSnapshot) (*ExpHistogram, error) {
	if len(s.Bounds) == 0 || len(s.Counts) != len(s.Bounds)+1 {
		return nil, fmt.Errorf("stats: snapshot shape %d bounds / %d counts", len(s.Bounds), len(s.Counts))
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.N {
		return nil, fmt.Errorf("stats: snapshot count mismatch: buckets sum %d, n %d", total, s.N)
	}
	prev := 0.0
	for i, b := range s.Bounds {
		if b <= prev || math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("stats: snapshot bounds not increasing/finite at bucket %d", i)
		}
		prev = b
	}
	return &ExpHistogram{
		bounds: append([]float64(nil), s.Bounds...),
		counts: append([]uint64(nil), s.Counts...),
		n:      s.N,
		sum:    s.Sum,
	}, nil
}

// Quantile returns an approximate q-quantile (0 <= q <= 1), assuming
// samples are uniform within a bucket; overflow samples report the
// largest finite bound.
func (h *ExpHistogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (target - cum) / float64(c)
			return lo + frac*(h.bounds[i]-lo)
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// Percentile returns the exact q-quantile (0 <= q <= 1) of the samples
// by linear interpolation between adjacent order statistics. The input
// is not modified; it panics on an empty slice.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		panic("stats: Percentile of no samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// Distribution tallies discrete outcomes (e.g. "misses needing k ring
// traversals") and reports percentage shares.
type Distribution struct {
	counts map[int]uint64
	total  uint64
}

// NewDistribution returns an empty discrete distribution.
func NewDistribution() *Distribution {
	return &Distribution{counts: make(map[int]uint64)}
}

// Observe tallies one outcome.
func (d *Distribution) Observe(outcome int) {
	d.counts[outcome]++
	d.total++
}

// AddCount tallies n occurrences of one outcome at once, the bulk
// form of Observe used when rebuilding a serialized distribution.
func (d *Distribution) AddCount(outcome int, n uint64) {
	if n == 0 {
		return
	}
	d.counts[outcome] += n
	d.total += n
}

// Counts returns a copy of the per-outcome tallies.
func (d *Distribution) Counts() map[int]uint64 {
	out := make(map[int]uint64, len(d.counts))
	for o, c := range d.counts {
		out[o] = c
	}
	return out
}

// N returns the number of observations.
func (d *Distribution) N() uint64 { return d.total }

// Count returns the tally for one outcome.
func (d *Distribution) Count(outcome int) uint64 { return d.counts[outcome] }

// Percent returns the share of observations with the given outcome, in
// percent.
func (d *Distribution) Percent(outcome int) float64 {
	if d.total == 0 {
		return 0
	}
	return 100 * float64(d.counts[outcome]) / float64(d.total)
}

// PercentAtLeast returns the share of observations with outcome >= k.
func (d *Distribution) PercentAtLeast(k int) float64 {
	if d.total == 0 {
		return 0
	}
	var n uint64
	for o, c := range d.counts {
		if o >= k {
			n += c
		}
	}
	return 100 * float64(n) / float64(d.total)
}

// Outcomes returns the observed outcomes in ascending order.
func (d *Distribution) Outcomes() []int {
	out := make([]int, 0, len(d.counts))
	for o := range d.counts {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// RelErr returns |a-b| / max(|b|, eps), the relative error of a against
// reference b, used for model-vs-simulation validation.
func RelErr(a, b float64) float64 {
	den := math.Abs(b)
	if den < 1e-12 {
		den = 1e-12
	}
	return math.Abs(a-b) / den
}

// Table renders aligned ASCII tables in the style of the paper's tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, one format per cell,
// applied to the matching value.
func (t *Table) AddRowf(format string, values ...any) {
	t.AddRow(strings.Fields(fmt.Sprintf(format, values...))...)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Series is a named (x, y) data series, the unit of figure reproduction:
// each curve in a paper figure becomes one Series.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// At returns the y value for the given x, interpolating linearly and
// clamping outside the domain. It panics on an empty series.
func (s *Series) At(x float64) float64 {
	if len(s.X) == 0 {
		panic("stats: At on empty series")
	}
	if x <= s.X[0] {
		return s.Y[0]
	}
	for i := 1; i < len(s.X); i++ {
		if x <= s.X[i] {
			f := (x - s.X[i-1]) / (s.X[i] - s.X[i-1])
			return s.Y[i-1] + f*(s.Y[i]-s.Y[i-1])
		}
	}
	return s.Y[len(s.Y)-1]
}

// Figure is a collection of series sharing axes, mirroring one panel of
// a paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure returns an empty figure panel.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a new named series and returns it.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// String renders the figure as a column-per-series table: the exact
// numbers behind each curve, which is what "regenerating a figure"
// means in a text harness.
func (f *Figure) String() string {
	t := NewTable(fmt.Sprintf("%s  [x=%s, y=%s]", f.Title, f.XLabel, f.YLabel))
	t.Headers = append(t.Headers, f.XLabel)
	for _, s := range f.Series {
		t.Headers = append(t.Headers, s.Name)
	}
	// Collect the union of x values (series usually share the sweep).
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%.4g", x)}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.4g", s.At(x)))
		}
		t.AddRow(row...)
	}
	return t.String()
}
