package stats

import (
	"strings"
	"testing"
)

func plotFigure() *Figure {
	f := NewFigure("Test figure", "cycle(ns)", "util(%)")
	up := f.AddSeries("rising")
	down := f.AddSeries("falling")
	for x := 1.0; x <= 20; x++ {
		up.Add(x, x*4)
		down.Add(x, 100-x*4)
	}
	return f
}

func TestPlotContainsFrameAndLegend(t *testing.T) {
	out := plotFigure().Plot(40, 10)
	for _, want := range []string{"Test figure", "rising", "falling", "cycle(ns)", "util(%)", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// Both series glyphs appear.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+ ") {
		t.Fatalf("series glyphs missing:\n%s", out)
	}
}

func TestPlotOrientation(t *testing.T) {
	// The rising series must appear lower-left to upper-right: its
	// glyph '*' should be on a lower row at the left edge than at the
	// right edge.
	out := plotFigure().Plot(40, 12)
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l[strings.Index(l, "|")+1:])
		}
	}
	firstStarRowLeft, firstStarRowRight := -1, -1
	for r, l := range plotLines {
		if len(l) == 0 {
			continue
		}
		if idx := strings.IndexByte(l, '*'); idx >= 0 && idx < 8 && firstStarRowLeft == -1 {
			firstStarRowLeft = r
		}
		if idx := strings.LastIndexByte(l, '*'); idx >= len(l)-8 && firstStarRowRight == -1 {
			firstStarRowRight = r
		}
	}
	if firstStarRowLeft == -1 || firstStarRowRight == -1 {
		t.Fatalf("rising series not found at both edges:\n%s", out)
	}
	if firstStarRowRight >= firstStarRowLeft {
		t.Fatalf("rising series not rising (left row %d, right row %d):\n%s",
			firstStarRowLeft, firstStarRowRight, out)
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	empty := NewFigure("empty", "x", "y")
	if out := empty.Plot(40, 10); !strings.Contains(out, "no series") {
		t.Fatalf("empty figure plot = %q", out)
	}
	flat := NewFigure("flat", "x", "y")
	s := flat.AddSeries("const")
	s.Add(0, 5)
	s.Add(10, 5)
	out := flat.Plot(40, 10) // constant series must not divide by zero
	if !strings.Contains(out, "const") {
		t.Fatalf("flat plot missing legend:\n%s", out)
	}
	single := NewFigure("single", "x", "y")
	p := single.AddSeries("pt")
	p.Add(3, 7)
	_ = single.Plot(40, 10) // single point must not panic
}

func TestPlotEnforcesMinimumSize(t *testing.T) {
	out := plotFigure().Plot(1, 1)
	if len(strings.Split(out, "\n")) < 5 {
		t.Fatalf("minimum size not enforced:\n%s", out)
	}
}
