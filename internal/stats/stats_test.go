package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", c.Count())
	}
}

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatalf("empty Mean.Value() = %v, want 0", m.Value())
	}
	for _, v := range []float64{2, 4, 6} {
		m.Observe(v)
	}
	if m.Value() != 4 {
		t.Fatalf("Value() = %v, want 4", m.Value())
	}
	if m.Min() != 2 || m.Max() != 6 {
		t.Fatalf("Min/Max = %v/%v, want 2/6", m.Min(), m.Max())
	}
	if m.N() != 3 || m.Sum() != 12 {
		t.Fatalf("N/Sum = %d/%v, want 3/12", m.N(), m.Sum())
	}
}

func TestMeanBoundsInvariant(t *testing.T) {
	f := func(vals []float64) bool {
		var m Mean
		ok := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // avoid overflow in the sum; not a Mean defect
			}
			m.Observe(v)
		}
		if m.N() > 0 {
			ok = m.Min() <= m.Value()+1e-9 && m.Value() <= m.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-5) // clamps into first bin
	h.Observe(50) // clamps into last bin
	if h.N() != 12 {
		t.Fatalf("N() = %d, want 12", h.N())
	}
	if h.bins[0] != 2 || h.bins[9] != 2 {
		t.Fatalf("end bins = %d,%d, want 2,2", h.bins[0], h.bins[9])
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median of uniform[0,100) = %v, want ~50", med)
	}
	if q := h.Quantile(1.0); q < 95 {
		t.Fatalf("Quantile(1.0) = %v, want near 100", q)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestDistributionPercent(t *testing.T) {
	d := NewDistribution()
	for i := 0; i < 70; i++ {
		d.Observe(1)
	}
	for i := 0; i < 30; i++ {
		d.Observe(2)
	}
	if p := d.Percent(1); p != 70 {
		t.Fatalf("Percent(1) = %v, want 70", p)
	}
	if p := d.Percent(2); p != 30 {
		t.Fatalf("Percent(2) = %v, want 30", p)
	}
	if p := d.Percent(3); p != 0 {
		t.Fatalf("Percent(3) = %v, want 0", p)
	}
	if p := d.PercentAtLeast(2); p != 30 {
		t.Fatalf("PercentAtLeast(2) = %v, want 30", p)
	}
	if got := d.Outcomes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Outcomes() = %v, want [1 2]", got)
	}
}

func TestDistributionPercentsSumTo100(t *testing.T) {
	f := func(outcomes []uint8) bool {
		if len(outcomes) == 0 {
			return true
		}
		d := NewDistribution()
		for _, o := range outcomes {
			d.Observe(int(o % 5))
		}
		var sum float64
		for _, o := range d.Outcomes() {
			sum += d.Percent(o)
		}
		return math.Abs(sum-100) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelErr(t *testing.T) {
	if e := RelErr(110, 100); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("RelErr(110,100) = %v, want 0.1", e)
	}
	if e := RelErr(0, 0); e != 0 {
		t.Fatalf("RelErr(0,0) = %v, want 0", e)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X", "bench", "value")
	tab.AddRow("MP3D", "3.29")
	tab.AddRow("WATER", "0.21")
	out := tab.String()
	for _, want := range []string{"Table X", "bench", "MP3D", "0.21"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows() = %d, want 2", tab.NumRows())
	}
}

func TestTableShortRowPads(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("only")
	if tab.NumRows() != 1 {
		t.Fatal("row not added")
	}
	// Must not panic when rendering a padded row.
	_ = tab.String()
}

func TestSeriesInterpolation(t *testing.T) {
	var s Series
	s.Add(0, 0)
	s.Add(10, 100)
	if y := s.At(5); y != 50 {
		t.Fatalf("At(5) = %v, want 50", y)
	}
	if y := s.At(-1); y != 0 {
		t.Fatalf("At(-1) = %v, want clamp to 0", y)
	}
	if y := s.At(99); y != 100 {
		t.Fatalf("At(99) = %v, want clamp to 100", y)
	}
}

func TestSeriesAtEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At on empty series did not panic")
		}
	}()
	(&Series{}).At(1)
}

func TestFigureRoundTrip(t *testing.T) {
	f := NewFigure("Fig 3 MP3D", "cycle(ns)", "util(%)")
	s := f.AddSeries("snoop-16")
	s.Add(1, 20)
	s.Add(20, 80)
	if f.Get("snoop-16") != s {
		t.Fatal("Get did not return the added series")
	}
	if f.Get("missing") != nil {
		t.Fatal("Get returned a series for an unknown name")
	}
	out := f.String()
	for _, want := range []string{"Fig 3 MP3D", "snoop-16", "cycle(ns)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesMonotoneXInterpolationInvariant(t *testing.T) {
	// Property: for a series with increasing y, At is monotone in x.
	f := func(n uint8) bool {
		var s Series
		m := int(n%20) + 2
		for i := 0; i < m; i++ {
			s.Add(float64(i), float64(i*i))
		}
		prev := s.At(0)
		for x := 0.0; x < float64(m); x += 0.25 {
			y := s.At(x)
			if y < prev-1e-9 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
