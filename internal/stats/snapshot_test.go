package stats

import (
	"encoding/json"
	"testing"
)

// TestSnapshotRoundTrip pins the federation wire contract: an
// ExpHistogram survives Snapshot → JSON → FromSnapshot losslessly and
// the rebuilt histogram merges like the original.
func TestSnapshotRoundTrip(t *testing.T) {
	h := NewExpHistogram(1, 2, 6)
	for _, v := range []float64{0.2, 1, 3, 3, 17, 1e9} {
		h.Observe(v)
	}

	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap HistSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	got, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}

	if got.N() != h.N() || got.Sum() != h.Sum() {
		t.Fatalf("n/sum = %d/%g, want %d/%g", got.N(), got.Sum(), h.N(), h.Sum())
	}
	wb, wc := h.Buckets()
	gb, gc := got.Buckets()
	for i := range wb {
		if gb[i] != wb[i] {
			t.Fatalf("bound %d = %g, want %g", i, gb[i], wb[i])
		}
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("count %d = %d, want %d", i, gc[i], wc[i])
		}
	}

	// Merging a rebuilt snapshot into a same-shape histogram must
	// preserve totals — the fleet-aggregation path.
	agg := NewExpHistogram(1, 2, 6)
	agg.Observe(5)
	if err := agg.Merge(got); err != nil {
		t.Fatal(err)
	}
	if agg.N() != h.N()+1 {
		t.Fatalf("merged n = %d, want %d", agg.N(), h.N()+1)
	}

	// Snapshot must be a copy, not aliased storage.
	snap2 := h.Snapshot()
	snap2.Counts[0] = 999
	if _, c := h.Buckets(); c[0] == 999 {
		t.Fatal("Snapshot aliased histogram storage")
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	ok := NewExpHistogram(1, 2, 3).Snapshot()
	cases := map[string]func(HistSnapshot) HistSnapshot{
		"short counts": func(s HistSnapshot) HistSnapshot {
			s.Counts = s.Counts[:len(s.Counts)-1]
			return s
		},
		"no bounds": func(s HistSnapshot) HistSnapshot {
			s.Bounds = nil
			return s
		},
		"count mismatch": func(s HistSnapshot) HistSnapshot {
			s.N = 41
			return s
		},
		"non-increasing bounds": func(s HistSnapshot) HistSnapshot {
			s.Bounds = append([]float64(nil), s.Bounds...)
			s.Bounds[1] = s.Bounds[0]
			return s
		},
		"negative bound": func(s HistSnapshot) HistSnapshot {
			s.Bounds = append([]float64(nil), s.Bounds...)
			s.Bounds[0] = -1
			return s
		},
	}
	for name, mutate := range cases {
		if _, err := FromSnapshot(mutate(ok)); err == nil {
			t.Errorf("%s: FromSnapshot accepted malformed snapshot", name)
		}
	}
	if _, err := FromSnapshot(ok); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}
