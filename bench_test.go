package repro

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (deliverable (d) of the reproduction): each
// Benchmark below rebuilds one table/figure from scratch — calibration
// simulations plus analytical-model sweeps — and logs the rows/series
// once with -v. Absolute wall-clock numbers measure this framework,
// not the 1993 testbed; the shapes are the reproduction target and are
// asserted by the test suite.
//
// Run with:
//
//	go test -bench=. -benchmem
import (
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchScale keeps `go test -bench=.` affordable while preserving the
// event statistics that drive every shape.
const benchScale = 900

// sharedSuite reuses calibration runs across benchmark functions so a
// full -bench=. pass doesn't resimulate every workload for every
// table. The first benchmark touching a configuration pays for it.
var (
	suiteOnce   sync.Once
	sharedSuite *Suite
)

func benchSuite() *Suite {
	suiteOnce.Do(func() {
		sharedSuite = NewSuite(SuiteOptions{DataRefsPerCPU: benchScale, Seed: 1993})
	})
	return sharedSuite
}

func logOnce(b *testing.B, out string) {
	b.Helper()
	b.Logf("\n%s", out)
}

// BenchmarkTable1Traversals regenerates Table 1: the distribution of
// ring traversals per miss and invalidation, full-map vs linked-list
// directory, for the 16-CPU SPLASH benchmarks.
func BenchmarkTable1Traversals(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table1()
	}
	logOnce(b, out)
}

// BenchmarkTable2TraceCharacteristics regenerates Table 2: measured
// synthetic-workload statistics against the paper's targets.
func BenchmarkTable2TraceCharacteristics(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table2()
	}
	logOnce(b, out)
}

// BenchmarkTable3SnoopRate regenerates Table 3: probe inter-arrival
// times per dual-directory bank across ring widths and block sizes.
func BenchmarkTable3SnoopRate(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table3()
	}
	logOnce(b, out)
}

// BenchmarkTable4BusMatch regenerates Table 4: the bus clock needed to
// match each slotted-ring configuration's processor utilization.
func BenchmarkTable4BusMatch(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Table4()
	}
	logOnce(b, out)
}

// BenchmarkFigure3SnoopVsDir regenerates Figure 3's panels (MP3D,
// WATER, CHOLESKY at 8/16/32 CPUs; snooping vs directory on the
// 500 MHz ring).
func BenchmarkFigure3SnoopVsDir(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Figure3("MP3D") + "\n" + s.Figure3("WATER") + "\n" + s.Figure3("CHOLESKY")
	}
	logOnce(b, out)
}

// BenchmarkFigure4SnoopVsDir64 regenerates Figure 4 (FFT, WEATHER,
// SIMPLE at 64 CPUs).
func BenchmarkFigure4SnoopVsDir64(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Figure4()
	}
	logOnce(b, out)
}

// BenchmarkFigure5MissBreakdown regenerates Figure 5: the directory
// protocol's remote-miss latency-class breakdown.
func BenchmarkFigure5MissBreakdown(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Figure5()
	}
	logOnce(b, out)
}

// BenchmarkFigure6RingVsBus regenerates Figure 6: 32-bit rings at
// 250/500 MHz against 64-bit buses at 50/100 MHz for MP3D and WATER at
// every size.
func BenchmarkFigure6RingVsBus(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = ""
		for _, bench := range []string{"MP3D", "WATER"} {
			for _, cpus := range []int{8, 16, 32} {
				out += s.Figure6(bench, cpus) + "\n"
			}
		}
	}
	logOnce(b, out)
}

// BenchmarkModelValidation regenerates the model-vs-simulation accuracy
// table (the paper's 15 %/5 % claim).
func BenchmarkModelValidation(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.Validation("MP3D", 8)
	}
	logOnce(b, out)
}

// BenchmarkAblationSlotMix regenerates the frame slot-mix ablation.
func BenchmarkAblationSlotMix(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.AblationSlotMix("MP3D", 16)
	}
	logOnce(b, out)
}

// BenchmarkAblationStarvationRule regenerates the anti-starvation rule
// ablation.
func BenchmarkAblationStarvationRule(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.AblationStarvationRule("MP3D", 16)
	}
	logOnce(b, out)
}

// BenchmarkAblationWideRing regenerates the 64-bit ring ablation.
func BenchmarkAblationWideRing(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.AblationWideRing("MP3D", 16)
	}
	logOnce(b, out)
}

// BenchmarkAblationAccessControl regenerates the slotted vs
// register-insertion vs token ring comparison.
func BenchmarkAblationAccessControl(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.AblationAccessControlTable(8).String()
	}
	logOnce(b, out)
}

// --- Micro-benchmarks of the substrate ---

// BenchmarkRingSend measures raw slotted-ring message dispatch.
func BenchmarkRingSend(b *testing.B) {
	k := sim.NewKernel()
	r := ring.New(k, ring.Config{Nodes: 16})
	b.ReportAllocs()
	at := sim.Time(0)
	for i := 0; i < b.N; i++ {
		src := i % 16
		dst := (i + 5) % 16
		at += 50 * sim.Nanosecond
		i := i
		k.At(at, func() { _ = i; r.Send(src, dst, ring.BlockSlot, nil, nil) })
		if i%1024 == 0 {
			k.Run()
		}
	}
	k.Run()
}

// BenchmarkWorkloadGenerator measures synthetic reference generation.
func BenchmarkWorkloadGenerator(b *testing.B) {
	gen := workload.NewGenerator(workload.Config{
		Profile:        workload.MustProfile("MP3D", 16),
		DataRefsPerCPU: 1 << 30, // effectively unbounded
		Seed:           1,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := gen.Next(i % 16); !ok {
			b.Fatal("generator exhausted")
		}
	}
}

// BenchmarkFullSimulation measures one complete 16-CPU snooping-ring
// simulation end to end.
func BenchmarkFullSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Benchmark: "MP3D", CPUs: 16, DataRefsPerCPU: 500, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLatencyTolerance regenerates the weak-ordering
// (non-blocking stores) ring-vs-bus comparison — the paper's Section 6
// argument.
func BenchmarkAblationLatencyTolerance(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.AblationLatencyTolerance("MP3D", 16)
	}
	logOnce(b, out)
}

// BenchmarkLatencyDecomposition regenerates the contention-vs-pure-delay
// split behind the paper's latency-tolerance conclusion.
func BenchmarkLatencyDecomposition(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.LatencyDecomposition("MP3D", 16, 2)
	}
	logOnce(b, out)
}

// BenchmarkExtensionHierarchy regenerates the hierarchical-ring
// extension experiment (flat 64-node ring vs an 8×8 hierarchy).
func BenchmarkExtensionHierarchy(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.ExtensionHierarchy("FFT", 64, 8)
	}
	logOnce(b, out)
}

// BenchmarkAblationBlockSize regenerates the cache/ring block-size
// sweep (the trade-off the paper's 16-byte choice sits on).
func BenchmarkAblationBlockSize(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.AblationBlockSize("MP3D", 16)
	}
	logOnce(b, out)
}

// BenchmarkAblationMultitasking regenerates the context-switch quantum
// sweep.
func BenchmarkAblationMultitasking(b *testing.B) {
	s := benchSuite()
	var out string
	for i := 0; i < b.N; i++ {
		out = s.AblationMultitasking("WATER", 16)
	}
	logOnce(b, out)
}
