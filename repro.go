// Package repro reproduces Barroso & Dubois, "The Performance of
// Cache-Coherent Ring-based Multiprocessors" (ISCA 1993): a complete
// simulation study of the unidirectional slotted ring as a
// cache-coherent interconnect for 8–64 processor shared-memory
// machines, comparing snooping and full-map directory protocols on the
// ring and the ring against high-end split-transaction buses.
//
// The package is a thin, stable facade over the internal simulation
// framework:
//
//   - Run simulates one complete machine (processors, caches, coherence
//     protocol, slotted ring or bus) over a synthetic benchmark workload
//     and returns its measured performance.
//   - NewSuite exposes the paper's full evaluation: every table and
//     figure (Tables 1–4, Figures 3–6), the model-vs-simulation
//     validation, and the design-choice ablations.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-reproduction comparison.
package repro

import (
	"fmt"
	"io"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Protocol selects a coherence protocol + interconnect pair.
type Protocol string

// The four machines the paper evaluates.
const (
	// SnoopRing is the paper's contribution: write-invalidate snooping
	// over the slotted ring (Section 3.1).
	SnoopRing Protocol = "snoop-ring"
	// DirectoryRing is the full-map directory protocol over the ring
	// (Section 3.2).
	DirectoryRing Protocol = "directory-ring"
	// SCIRing is the SCI-style linked-list directory over the ring
	// (Table 1's comparison point).
	SCIRing Protocol = "sci-ring"
	// SnoopBus is the split-transaction bus baseline (Section 4.3).
	SnoopBus Protocol = "snoop-bus"
	// HierRing is the hierarchical two-level ring extension (the
	// Hector/KSR1 direction of the paper's related work): clusters of
	// processors on local rings joined by a global ring.
	HierRing Protocol = "hier-ring"
)

// Protocols lists all supported protocols.
func Protocols() []Protocol {
	return []Protocol{SnoopRing, DirectoryRing, SCIRing, SnoopBus, HierRing}
}

func (p Protocol) internal() (core.Protocol, error) {
	switch p {
	case SnoopRing:
		return core.SnoopRing, nil
	case DirectoryRing:
		return core.DirectoryRing, nil
	case SCIRing:
		return core.SCIRing, nil
	case SnoopBus:
		return core.SnoopBus, nil
	case HierRing:
		return core.HierRing, nil
	default:
		return 0, fmt.Errorf("repro: unknown protocol %q", p)
	}
}

// Config describes one simulated machine + workload.
type Config struct {
	// Protocol selects the machine; default SnoopRing.
	Protocol Protocol
	// Benchmark is one of the paper's workloads: MP3D, WATER, CHOLESKY
	// (8/16/32 CPUs) or FFT, WEATHER, SIMPLE (64 CPUs). Default MP3D.
	Benchmark string
	// CPUs is the system size; it must match a Table 2 row for the
	// benchmark. Default 16.
	CPUs int
	// ProcCycleNS is the processor cycle time in nanoseconds (the
	// paper sweeps 1–20). Default 20 (50 MIPS).
	ProcCycleNS float64
	// RingMHz is the ring link clock (paper: 500 or 250). Default 500.
	RingMHz int
	// RingWidthBits is the ring data path width. Default 32.
	RingWidthBits int
	// BusMHz is the bus clock for SnoopBus (paper: 50 or 100).
	// Default 50.
	BusMHz int
	// DataRefsPerCPU scales the simulation length (data references per
	// processor, excluding warmup). Default 2000.
	DataRefsPerCPU int
	// Clusters is the cluster count for HierRing (default 4; must
	// divide CPUs evenly).
	Clusters int
	// Seed makes runs reproducible. Default 1.
	Seed uint64
	// TraceSample, when > 0, enables transaction-level tracing: every
	// measured coherence transaction feeds per-class latency
	// histograms, and every TraceSample-th one is captured as a full
	// span record (issue → probe grab → ack → data fill) in the
	// resulting Perfetto trace. Zero (the default) disables tracing
	// entirely; the simulated results are identical either way.
	TraceSample int
	// Parallel, when > 1, requests a partitioned parallel simulation
	// with that many domains. Covered configurations produce results
	// byte-identical to the sequential kernel; everything else falls
	// back to sequential execution with Result.ParallelFallback naming
	// why. 0 or 1 (the default) is today's sequential kernel, untouched.
	//
	// The covered class is directory-ring, untraced, blocking stores,
	// and either (a) a private-only workload such as the PRIVATE
	// benchmarks (independent domains, any partition count up to the
	// CPU count), or (b) RingSegments >= 2 (the segmented interconnect,
	// any workload: boundary-crossing coherence traffic is carried as
	// cross-partition events under the boundary links' hop-latency
	// lookahead; the partition count is clamped to the largest divisor
	// of the segment count within the request).
	Parallel int
	// RingSegments, when >= 2, selects the segmented ring interconnect:
	// the ring is split into that many contiguous node segments with
	// per-segment injection points and serialized boundary links. It is
	// a distinct interconnect model (arbitration differs from the
	// classic global-slot ring), so results differ from RingSegments ==
	// 0 and the value participates in result hashing; its purpose is to
	// give parallel simulation real lookahead, letting SHARED workloads
	// run partitioned with byte-identical results. Requires the
	// directory-ring protocol, CPUs divisible by the segment count, and
	// no tracing.
	RingSegments int
}

func (c *Config) fill() error {
	if c.Protocol == "" {
		c.Protocol = SnoopRing
	}
	if c.Benchmark == "" {
		c.Benchmark = "MP3D"
	}
	if c.CPUs == 0 {
		c.CPUs = 16
	}
	if c.ProcCycleNS == 0 {
		c.ProcCycleNS = 20
	}
	if c.RingMHz == 0 {
		c.RingMHz = 500
	}
	if c.RingWidthBits == 0 {
		c.RingWidthBits = 32
	}
	if c.BusMHz == 0 {
		c.BusMHz = 50
	}
	if c.DataRefsPerCPU == 0 {
		c.DataRefsPerCPU = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ProcCycleNS < 0.1 || c.ProcCycleNS > 1000 {
		return fmt.Errorf("repro: processor cycle %.2f ns out of range", c.ProcCycleNS)
	}
	if _, ok := workload.ProfileFor(c.Benchmark, c.CPUs); !ok {
		return fmt.Errorf("repro: no workload profile %s/%d (see repro.Benchmarks)", c.Benchmark, c.CPUs)
	}
	if c.RingSegments != 0 {
		if c.RingSegments < 2 {
			return fmt.Errorf("repro: RingSegments must be 0 (classic ring) or >= 2, not %d", c.RingSegments)
		}
		if c.Protocol != DirectoryRing {
			return fmt.Errorf("repro: RingSegments requires the directory-ring protocol, not %s", c.Protocol)
		}
		if c.CPUs%c.RingSegments != 0 {
			return fmt.Errorf("repro: %d CPUs not divisible into %d ring segments", c.CPUs, c.RingSegments)
		}
		if c.TraceSample > 0 {
			return fmt.Errorf("repro: tracing is unsupported with the segmented ring (RingSegments >= 2)")
		}
	}
	return nil
}

// Benchmark identifies one workload profile.
type Benchmark struct {
	Name string
	CPUs int
}

// Benchmarks lists every workload profile (Table 2).
func Benchmarks() []Benchmark {
	var out []Benchmark
	for _, p := range workload.Profiles() {
		out = append(out, Benchmark{Name: p.Name, CPUs: p.CPUs})
	}
	return out
}

// Result is the distilled outcome of one simulation, the quantities the
// paper plots.
type Result struct {
	// ProcUtil is the average processor utilization in [0,1].
	ProcUtil float64
	// NetworkUtil is the ring slot (or bus) utilization in [0,1].
	NetworkUtil float64
	// MissLatencyNS is the mean blocking miss latency.
	MissLatencyNS float64
	// InvLatencyNS is the mean invalidation latency.
	InvLatencyNS float64
	// ExecTimeUS is the simulated execution time in microseconds.
	ExecTimeUS float64
	// SharedMissRate is the measured shared-data miss rate.
	SharedMissRate float64
	// TotalMissRate is the measured overall data miss rate.
	TotalMissRate float64
	// Misses and Upgrades count coherence transactions.
	Misses, Upgrades uint64

	// Partitions is how many parallel domains executed the run (1 =
	// sequential); ParallelFallback names why a Config.Parallel request
	// was not honored (empty when it was, or was never made).
	Partitions       int
	ParallelFallback string
	// ParallelWindows counts conservative barrier windows,
	// ParallelCrossEvents the events exchanged between partitions, and
	// BarrierStallNS the wall-clock nanoseconds each partition spent
	// waiting at window barriers (per-partition imbalance signal); all
	// zero for sequential runs. ParallelWindowPS is the barrier-window
	// width in simulated picoseconds (the minimum boundary-link hop for
	// segmented-interconnect runs) and ParallelCrossWindows how many
	// windows carried at least one cross-partition event.
	ParallelWindows      uint64
	ParallelCrossEvents  uint64
	ParallelWindowPS     int64
	ParallelCrossWindows uint64
	BarrierStallNS       []int64

	// tr is the run's transaction tracer when Config.TraceSample
	// enabled it (see HasTrace / WriteTrace / SpanClasses).
	tr *obs.Tracer
}

// HasTrace reports whether the run captured a transaction trace.
func (r *Result) HasTrace() bool { return r.tr != nil }

// WriteTrace writes the run's trace in the Chrome trace-event JSON
// format, loadable at ui.perfetto.dev: one row per processor with its
// sampled transaction spans, plus counter tracks for ring-slot (or
// bus) occupancy. It fails if the run was not traced.
func (r *Result) WriteTrace(w io.Writer) error {
	if r.tr == nil {
		return fmt.Errorf("repro: run was not traced (set Config.TraceSample)")
	}
	return r.tr.WriteTrace(w)
}

// SpanClass summarizes one traced transaction class.
type SpanClass struct {
	// Class is the transaction name (read-miss-clean, write-back, …).
	Class string
	// Spans is how many transactions of the class the measured window
	// completed — every one, not just the sampled ones.
	Spans uint64
	// MeanNS / P50NS / P95NS summarize the class's latency in
	// nanoseconds.
	MeanNS, P50NS, P95NS float64
}

// SpanClasses summarizes the traced transaction classes in protocol
// order, or nil if the run was not traced. The means agree exactly
// with the run's aggregate latencies: the histograms observe every
// measured transaction, and sampling only limits which spans carry
// full phase records.
func (r *Result) SpanClasses() []SpanClass {
	if r.tr == nil {
		return nil
	}
	var out []SpanClass
	for t := 0; t < coherence.NumTxn; t++ {
		txn := coherence.Txn(t)
		n := r.tr.ClassCount(txn)
		if n == 0 {
			continue
		}
		h := r.tr.ClassLatency(txn)
		out = append(out, SpanClass{
			Class:  txn.String(),
			Spans:  n,
			MeanNS: h.Mean(),
			P50NS:  h.Quantile(0.50),
			P95NS:  h.Quantile(0.95),
		})
	}
	return out
}

// String summarizes the result in one line.
func (r *Result) String() string {
	return fmt.Sprintf("Uproc=%.1f%% Unet=%.1f%% missLat=%.0fns invLat=%.0fns exec=%.1fus",
		100*r.ProcUtil, 100*r.NetworkUtil, r.MissLatencyNS, r.InvLatencyNS, r.ExecTimeUS)
}

// Run simulates one machine to completion.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	proto, err := cfg.Protocol.internal()
	if err != nil {
		return nil, err
	}
	prof := workload.MustProfile(cfg.Benchmark, cfg.CPUs)
	const warmup = 600
	gen := workload.NewGenerator(workload.Config{
		Profile:        prof,
		DataRefsPerCPU: cfg.DataRefsPerCPU + warmup,
		Seed:           cfg.Seed,
	})
	m := core.Run(core.Config{
		Protocol:       proto,
		ProcCycle:      sim.Time(cfg.ProcCycleNS * float64(sim.Nanosecond)),
		Ring:           ring.Config{ClockPS: sim.Time(1e6 / float64(cfg.RingMHz)), WidthBits: cfg.RingWidthBits, Segments: cfg.RingSegments},
		Bus:            bus.Config{ClockPS: sim.Time(1e6 / float64(cfg.BusMHz))},
		Clusters:       cfg.Clusters,
		Seed:           cfg.Seed,
		WarmupDataRefs: warmup,
		Trace:          obs.Config{SampleEvery: cfg.TraceSample},
		Parallel:       cfg.Parallel,
	}, gen)
	return &Result{
		tr:                   m.Trace,
		ProcUtil:             m.ProcUtil(),
		NetworkUtil:          m.NetworkUtil,
		MissLatencyNS:        m.MissLatency.Value(),
		InvLatencyNS:         m.InvLatency.Value(),
		ExecTimeUS:           m.ExecTime.Nanoseconds() / 1000,
		SharedMissRate:       m.SharedMissRate(),
		TotalMissRate:        m.TotalMissRate(),
		Misses:               m.SharedMisses + m.PrivateMisses,
		Upgrades:             m.Upgrades,
		Partitions:           m.Parallel.Partitions,
		ParallelFallback:     m.Parallel.Fallback,
		ParallelWindows:      m.Parallel.Windows,
		ParallelCrossEvents:  m.Parallel.CrossEvents,
		ParallelWindowPS:     m.Parallel.WindowPS,
		ParallelCrossWindows: m.Parallel.CrossWindows,
		BarrierStallNS:       m.Parallel.BarrierStallNS,
	}, nil
}

// RunTrace simulates cfg's machine over a recorded trace file (written
// by cmd/tracegen or trace.WriteFile; .gz handled transparently)
// instead of a synthetic workload. The trace's CPU count overrides
// cfg.CPUs; cfg.Benchmark is ignored.
func RunTrace(cfg Config, path string) (*Result, error) {
	cfg.Benchmark = "MP3D" // placeholder so validation passes; unused
	cfg.CPUs = 16
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	proto, err := cfg.Protocol.internal()
	if err != nil {
		return nil, err
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("repro: reading trace: %w", err)
	}
	if tr.NumCPUs() == 0 {
		return nil, fmt.Errorf("repro: trace %s has no processors", path)
	}
	sys := core.NewSystem(core.Config{
		Clusters:  cfg.Clusters,
		Protocol:  proto,
		ProcCycle: sim.Time(cfg.ProcCycleNS * float64(sim.Nanosecond)),
		Ring:      ring.Config{ClockPS: sim.Time(1e6 / float64(cfg.RingMHz)), WidthBits: cfg.RingWidthBits},
		Bus:       bus.Config{ClockPS: sim.Time(1e6 / float64(cfg.BusMHz))},
		Seed:      cfg.Seed,
		Trace:     obs.Config{SampleEvery: cfg.TraceSample},
	}, workload.NewTraceSource(tr))
	m := sys.Run()
	return &Result{
		tr:             m.Trace,
		ProcUtil:       m.ProcUtil(),
		NetworkUtil:    m.NetworkUtil,
		MissLatencyNS:  m.MissLatency.Value(),
		InvLatencyNS:   m.InvLatency.Value(),
		ExecTimeUS:     m.ExecTime.Nanoseconds() / 1000,
		SharedMissRate: m.SharedMissRate(),
		TotalMissRate:  m.TotalMissRate(),
		Misses:         m.SharedMisses + m.PrivateMisses,
		Upgrades:       m.Upgrades,
	}, nil
}
