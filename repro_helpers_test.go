package repro

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// writeTestTrace materializes a small MP3D/8 workload to path.
func writeTestTrace(t *testing.T, path string) {
	t.Helper()
	gen := workload.NewGenerator(workload.Config{
		Profile:        workload.MustProfile("MP3D", 8),
		DataRefsPerCPU: 800,
		Seed:           3,
	})
	tr := workload.Materialize("MP3D", gen)
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
}
