package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOneExperimentWritesReport(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "BENCH_1.json")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-only", "table1", "-refs", "300", "-json", jsonPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "==== table1") {
		t.Errorf("missing experiment output:\n%s", out.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("BENCH_1.json does not parse: %v", err)
	}
	if len(report.Points) != 1 || report.Points[0].Name != "table1" {
		t.Fatalf("unexpected points: %+v", report.Points)
	}
	p := report.Points[0]
	if p.WallNS <= 0 || p.SimulatedNS <= 0 || p.SimRingCyclesPerSec <= 0 {
		t.Errorf("point not populated: %+v", p)
	}
	if report.Sweep.Computed == 0 || report.Sweep.Workers == 0 {
		t.Errorf("sweep stats not populated: %+v", report.Sweep)
	}
}

func TestRunCancelledContextStopsAtExperimentBoundary(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	if code := run(ctx, []string{"-only", "table1", "-refs", "300", "-json", ""}, &out, &errb); code != 1 {
		t.Fatalf("cancelled run exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-only", "nope", "-json", ""}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestRunVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-version"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "ringbench ") {
		t.Errorf("stdout: %q", out.String())
	}
}
