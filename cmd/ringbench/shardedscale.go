package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro"
)

// shardedSegments is the segment count the sharded-interconnect
// scaling experiment partitions the ring into. Every swept partition
// count divides it, so no point silently clamps.
const shardedSegments = 8

// shardedScalePartitions is the fixed partition sweep. All values
// divide shardedSegments; identity is checked at every point no matter
// how many host cores exist, because correctness under real
// concurrency does not need the cores to make it faster.
var shardedScalePartitions = []int{1, 2, 4, 8}

// shardedScaleConfig is the widened covered class the experiment
// measures: a SHARED workload (MP3D/32) on the directory protocol over
// the segmented ring, so real coherence traffic crosses shard
// boundaries instead of the provably-decoupled private class bench7
// sweeps.
func shardedScaleConfig(refs int, seed uint64, partitions int) repro.Config {
	return repro.Config{
		Protocol:       "directory-ring",
		Benchmark:      "MP3D",
		CPUs:           32,
		ProcCycleNS:    5,
		RingMHz:        500,
		RingWidthBits:  32,
		RingSegments:   shardedSegments,
		DataRefsPerCPU: refs,
		Seed:           seed,
		Parallel:       partitions,
	}
}

// artifactSHA256 renders the canonicalized result as JSON and hashes
// it, so result identity is a statement about the simulated artifact
// bytes — reproducible from the report alone — rather than a
// transient in-memory comparison.
func artifactSHA256(r repro.Result) (string, error) {
	raw, err := json.Marshal(canonResult(r))
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// runShardedScale measures wall clock and verifies artifact identity
// for the segmented-interconnect machine across the fixed partition
// sweep. Unlike bench7's private class, every parallel point here
// must carry cross-shard traffic: zero cross events means the
// boundary handoff never exercised and the point is a hard failure.
func runShardedScale(refs int, seed uint64) (*parallelScaleReport, string, error) {
	srefs := refs * scaleRefsMultiplier
	rep := &parallelScaleReport{
		Benchmark:  "MP3D",
		CPUs:       32,
		RefsPerCPU: srefs,
		Seed:       seed,
		NumCPU:     runtime.NumCPU(),
		Segments:   shardedSegments,
	}

	run := func(p int) (*repro.Result, time.Duration, error) {
		var best *repro.Result
		var wall time.Duration
		for r := 0; r < 2; r++ {
			start := time.Now()
			res, err := repro.Run(shardedScaleConfig(srefs, seed, p))
			w := time.Since(start)
			if err != nil {
				return nil, 0, err
			}
			if best == nil || w < wall {
				best, wall = res, w
			}
		}
		return best, wall, nil
	}

	ref, seqWall, err := run(1)
	if err != nil {
		return nil, "", err
	}
	rep.SeqWallNS = seqWall.Nanoseconds()
	wantHash, err := artifactSHA256(*ref)
	if err != nil {
		return nil, "", err
	}
	rep.SeqArtifactSHA256 = wantHash

	var b strings.Builder
	fmt.Fprintf(&b, "sharded interconnect scaling: %s/%d CPUs, %d ring segments, %d refs/CPU, %d host cores\n",
		rep.Benchmark, rep.CPUs, shardedSegments, srefs, rep.NumCPU)
	fmt.Fprintf(&b, "sequential artifact sha256 %s\n", wantHash)
	fmt.Fprintf(&b, "%5s %10s %8s %9s %9s %10s %8s %s\n",
		"parts", "wall", "speedup", "identical", "windows", "cross/win", "window", "barrier stall / partition")
	for _, p := range shardedScalePartitions {
		res, wall, err := run(p)
		if err != nil {
			return nil, "", err
		}
		hash, err := artifactSHA256(*res)
		if err != nil {
			return nil, "", err
		}
		pt := parallelScalePoint{
			Partitions:     res.Partitions,
			WallNS:         wall.Nanoseconds(),
			Speedup:        float64(seqWall) / float64(wall),
			Identical:      hash == wantHash,
			Fallback:       res.ParallelFallback,
			Windows:        res.ParallelWindows,
			CrossEvents:    res.ParallelCrossEvents,
			BarrierStallNS: res.BarrierStallNS,
			ArtifactSHA256: hash,
			WindowPS:       res.ParallelWindowPS,
			CrossWindows:   res.ParallelCrossWindows,
		}
		if pt.Windows > 0 {
			pt.CrossEventsPerWindow = float64(pt.CrossEvents) / float64(pt.Windows)
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(&b, "%5d %10s %7.2fx %9v %9d %10.3f %7dps %s\n",
			pt.Partitions, wall.Round(time.Millisecond), pt.Speedup,
			pt.Identical, pt.Windows, pt.CrossEventsPerWindow,
			pt.WindowPS, stallSummary(pt.BarrierStallNS))
		if !pt.Identical {
			return nil, "", fmt.Errorf(
				"shardedscale: P=%d artifact %s diverged from sequential %s", p, hash, wantHash)
		}
		if pt.Fallback != "" {
			return nil, "", fmt.Errorf(
				"shardedscale: covered configuration fell back: %s", pt.Fallback)
		}
		if p > 1 && pt.CrossEvents == 0 {
			return nil, "", fmt.Errorf(
				"shardedscale: P=%d carried no cross-shard coherence traffic", p)
		}
	}
	return rep, b.String(), nil
}
