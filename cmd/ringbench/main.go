// Command ringbench regenerates every table and figure of the paper's
// evaluation section — Tables 1–4, Figures 3–6 — plus the
// model-validation table and the design-choice ablations, printing the
// rows and series the paper reports.
//
// Usage:
//
//	ringbench                 # everything (several minutes)
//	ringbench -only table1    # one experiment
//	ringbench -refs 4000      # longer calibration simulations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		refs = flag.Int("refs", 2000, "data references per CPU in calibration simulations")
		seed = flag.Uint64("seed", 1993, "random seed for the whole suite")
		only = flag.String("only", "", "run a single experiment: table1..table4, figure3..figure6, validation, hierarchy, ablations")
		plot = flag.Bool("plot", false, "render figures as ASCII line charts instead of data tables")
	)
	flag.Parse()

	s := repro.NewSuite(repro.SuiteOptions{DataRefsPerCPU: *refs, Seed: *seed})

	experiments := []struct {
		name string
		run  func() string
	}{
		{"table1", s.Table1},
		{"table2", s.Table2},
		{"table3", s.Table3},
		{"table4", s.Table4},
		{"figure3", func() string {
			var b strings.Builder
			for _, bench := range []string{"MP3D", "WATER", "CHOLESKY"} {
				if *plot {
					b.WriteString(s.Figure3Plot(bench))
				} else {
					b.WriteString(s.Figure3(bench))
				}
				b.WriteByte('\n')
			}
			return b.String()
		}},
		{"figure4", func() string {
			if *plot {
				return s.Figure4Plot()
			}
			return s.Figure4()
		}},
		{"figure5", s.Figure5},
		{"figure6", func() string {
			var b strings.Builder
			for _, bench := range []string{"MP3D", "WATER"} {
				for _, cpus := range []int{8, 16, 32} {
					if *plot {
						b.WriteString(s.Figure6Plot(bench, cpus))
					} else {
						b.WriteString(s.Figure6(bench, cpus))
					}
					b.WriteByte('\n')
				}
			}
			return b.String()
		}},
		{"validation", func() string {
			return s.Validation("MP3D", 8) + "\n" + s.Validation("WATER", 16)
		}},
		{"hierarchy", func() string {
			out := s.ExtensionHierarchy("FFT", 64, 8) + "\n" + s.ExtensionHierarchy("MP3D", 32, 4)
			if *plot {
				out += "\n" + s.ExtensionHierarchyFigure("FFT", 64, 8)
			}
			return out
		}},
		{"ablations", func() string {
			var b strings.Builder
			b.WriteString(s.AblationSlotMix("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationStarvationRule("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationWideRing("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationMultitasking("WATER", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationBlockSize("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationLatencyTolerance("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.LatencyDecomposition("MP3D", 16, 2))
			b.WriteByte('\n')
			b.WriteString(s.AblationAccessControl(8))
			return b.String()
		}},
	}

	matched := false
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		matched = true
		start := time.Now()
		out := e.run()
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, time.Since(start).Seconds(), out)
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "ringbench: unknown experiment %q\n", *only)
		os.Exit(1)
	}
}
