// Command ringbench regenerates every table and figure of the paper's
// evaluation section — Tables 1–4, Figures 3–6 — plus the
// model-validation table and the design-choice ablations, printing the
// rows and series the paper reports. Alongside the text output it
// writes BENCH_1.json, a machine-readable record of each experiment's
// wall clock and the simulation engine's throughput, so the
// reproduction's performance trajectory is tracked run over run.
//
// Usage:
//
//	ringbench                 # everything (several minutes)
//	ringbench -only table1    # one experiment
//	ringbench -refs 4000      # longer calibration simulations
//	ringbench > bench_results.txt   # text output to the results file
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/buildinfo"
)

// benchPoint records one experiment's cost: its wall clock and the
// simulation work the engine did for it (deltas of the suite's
// counters across the experiment).
type benchPoint struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	// SimulatedNS is the simulated time produced while this experiment
	// ran (zero when every simulation was a cache hit).
	SimulatedNS int64 `json:"simulated_ns"`
	// SimRingCyclesPerSec is the simulation throughput in 500 MHz ring
	// clock cycles (2 ns each) per wall-clock second.
	SimRingCyclesPerSec float64 `json:"sim_ring_cycles_per_sec"`
	Computed            int     `json:"computed"`
	CacheHits           int     `json:"cache_hits"`
}

// benchReport is the BENCH_1.json schema.
type benchReport struct {
	Refs    int          `json:"refs"`
	Seed    uint64       `json:"seed"`
	Workers int          `json:"workers"`
	Points  []benchPoint `json:"points"`
	// ParallelScale is the parallel-kernel scaling record when the
	// parallelscale experiment ran (wall clock, speedup, and result
	// identity per partition count).
	ParallelScale *parallelScaleReport `json:"parallel_scale,omitempty"`
	// ShardedScale is the segmented-interconnect scaling record when
	// the shardedscale experiment ran: same schema as ParallelScale,
	// with per-point artifact hashes and cross-shard traffic rates.
	ShardedScale *parallelScaleReport `json:"sharded_scale,omitempty"`
	TotalWallNS  int64                `json:"total_wall_ns"`
	Sweep        repro.SweepStats     `json:"sweep"`
}

func main() {
	// Ctrl-C / SIGTERM cancel the context: undispatched calibration
	// sweeps are abandoned, the current experiment finishes its
	// in-progress simulations into the cache, and the run stops at the
	// next experiment boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		refs       = fs.Int("refs", 2000, "data references per CPU in calibration simulations")
		seed       = fs.Uint64("seed", 1993, "random seed for the whole suite")
		only       = fs.String("only", "", "run a single experiment: table1..table4, figure3..figure6, validation, hierarchy, ablations, parallelscale, shardedscale")
		plot       = fs.Bool("plot", false, "render figures as ASCII line charts instead of data tables")
		workers    = fs.Int("workers", 0, "simulation worker pool size (0 = all CPUs)")
		cacheDir   = fs.String("cachedir", "", "persist simulation results to this directory")
		jsonOut    = fs.String("json", "BENCH_1.json", "write the machine-readable benchmark report here (empty to disable)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
		parallel   = fs.Int("parallel", 1, "partition covered simulations across this many event-kernel shards; also the top partition count the parallelscale experiment sweeps (1 = host default)")
		version    = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "ringbench %s\n", buildinfo.Read())
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "ringbench: creating cpu profile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "ringbench: starting cpu profile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "ringbench: creating mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "ringbench: writing mem profile:", err)
			}
		}()
	}

	s := repro.NewSuite(repro.SuiteOptions{
		Context:        ctx,
		DataRefsPerCPU: *refs,
		Seed:           *seed,
		Workers:        *workers,
		CacheDir:       *cacheDir,
		Parallel:       *parallel,
	})

	var psReport, ssReport *parallelScaleReport
	experiments := []struct {
		name string
		run  func() string
	}{
		{"table1", s.Table1},
		{"table2", s.Table2},
		{"table3", s.Table3},
		{"table4", s.Table4},
		{"figure3", func() string {
			var b strings.Builder
			for _, bench := range []string{"MP3D", "WATER", "CHOLESKY"} {
				if *plot {
					b.WriteString(s.Figure3Plot(bench))
				} else {
					b.WriteString(s.Figure3(bench))
				}
				b.WriteByte('\n')
			}
			return b.String()
		}},
		{"figure4", func() string {
			if *plot {
				return s.Figure4Plot()
			}
			return s.Figure4()
		}},
		{"figure5", s.Figure5},
		{"figure6", func() string {
			var b strings.Builder
			for _, bench := range []string{"MP3D", "WATER"} {
				for _, cpus := range []int{8, 16, 32} {
					if *plot {
						b.WriteString(s.Figure6Plot(bench, cpus))
					} else {
						b.WriteString(s.Figure6(bench, cpus))
					}
					b.WriteByte('\n')
				}
			}
			return b.String()
		}},
		{"validation", func() string {
			return s.Validation("MP3D", 8) + "\n" + s.Validation("WATER", 16)
		}},
		{"hierarchy", func() string {
			out := s.ExtensionHierarchy("FFT", 64, 8) + "\n" + s.ExtensionHierarchy("MP3D", 32, 4)
			if *plot {
				out += "\n" + s.ExtensionHierarchyFigure("FFT", 64, 8)
			}
			return out
		}},
		{"ablations", func() string {
			var b strings.Builder
			b.WriteString(s.AblationSlotMix("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationStarvationRule("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationWideRing("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationMultitasking("WATER", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationBlockSize("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.AblationLatencyTolerance("MP3D", 16))
			b.WriteByte('\n')
			b.WriteString(s.LatencyDecomposition("MP3D", 16, 2))
			b.WriteByte('\n')
			b.WriteString(s.AblationAccessControl(8))
			return b.String()
		}},
		{"parallelscale", func() string {
			rep, out, err := runParallelScale(*refs, *seed, *parallel)
			if err != nil {
				return "parallelscale FAILED: " + err.Error() + "\n"
			}
			psReport = rep
			return out
		}},
		{"shardedscale", func() string {
			rep, out, err := runShardedScale(*refs, *seed)
			if err != nil {
				return "shardedscale FAILED: " + err.Error() + "\n"
			}
			ssReport = rep
			return out
		}},
	}

	var points []benchPoint
	var totalWall time.Duration
	matched := false
	for _, e := range experiments {
		if *only != "" && e.name != *only {
			continue
		}
		matched = true
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(stderr, "ringbench: interrupted:", err)
			return 1
		}
		before := s.SweepStats()
		start := time.Now()
		out := e.run()
		wall := time.Since(start)
		after := s.SweepStats()
		totalWall += wall

		p := benchPoint{
			Name:        e.name,
			WallNS:      wall.Nanoseconds(),
			SimulatedNS: after.SimulatedNS - before.SimulatedNS,
			Computed:    after.Computed - before.Computed,
			CacheHits:   (after.CacheHits + after.DiskHits) - (before.CacheHits + before.DiskHits),
		}
		if secs := wall.Seconds(); secs > 0 {
			p.SimRingCyclesPerSec = float64(p.SimulatedNS) / 2 / secs
		}
		points = append(points, p)

		fmt.Fprintf(stdout, "==== %s (%.1fs) ====\n%s\n", e.name, wall.Seconds(), out)
	}
	if !matched {
		fmt.Fprintf(stderr, "ringbench: unknown experiment %q\n", *only)
		return 1
	}

	if *jsonOut != "" {
		report := benchReport{
			Refs:          *refs,
			Seed:          *seed,
			Workers:       s.SweepStats().Workers,
			Points:        points,
			ParallelScale: psReport,
			ShardedScale:  ssReport,
			TotalWallNS:   totalWall.Nanoseconds(),
			Sweep:         s.SweepStats(),
		}
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "ringbench: encoding report:", err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "ringbench: writing report:", err)
			return 1
		}
		fmt.Fprintf(stdout, "benchmark report written to %s\n", *jsonOut)
	}
	return 0
}
