package main

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"repro"
)

// parallelScalePoint is one partition count's measurement in the
// parallel-kernel scaling experiment.
type parallelScalePoint struct {
	Partitions int   `json:"partitions"`
	WallNS     int64 `json:"wall_ns"`
	// Speedup is sequential wall clock over this point's wall clock.
	Speedup float64 `json:"speedup"`
	// Identical records whether this point's result artifact matched
	// the sequential reference field for field. The suite treats any
	// false here as a hard failure.
	Identical      bool    `json:"identical"`
	Fallback       string  `json:"fallback,omitempty"`
	Windows        uint64  `json:"windows"`
	CrossEvents    uint64  `json:"cross_events"`
	BarrierStallNS []int64 `json:"barrier_stall_ns"`
	// The remaining fields are recorded by the shardedscale experiment
	// only: the sha256 of the canonicalized result artifact, the
	// lookahead-derived window width, and how much cross-shard
	// coherence traffic each window carried.
	ArtifactSHA256       string  `json:"artifact_sha256,omitempty"`
	WindowPS             int64   `json:"window_ps,omitempty"`
	CrossWindows         uint64  `json:"cross_windows,omitempty"`
	CrossEventsPerWindow float64 `json:"cross_events_per_window,omitempty"`
}

// parallelScaleReport is the parallelscale experiment's record in the
// benchmark JSON. Speedup claims are only meaningful when NumCPU
// covers the partition count, so the host's core count is part of the
// record.
type parallelScaleReport struct {
	Benchmark  string `json:"benchmark"`
	CPUs       int    `json:"cpus"`
	RefsPerCPU int    `json:"refs_per_cpu"`
	Seed       uint64 `json:"seed"`
	NumCPU     int    `json:"num_cpu"`
	SeqWallNS  int64  `json:"seq_wall_ns"`
	// Segments and SeqArtifactSHA256 are set by the shardedscale
	// experiment only: the ring-segment count every swept partition
	// count divides, and the artifact hash of the sequential reference.
	Segments          int                  `json:"segments,omitempty"`
	SeqArtifactSHA256 string               `json:"seq_artifact_sha256,omitempty"`
	Points            []parallelScalePoint `json:"points"`
}

// scaleRefsMultiplier stretches the calibration-length -refs into a
// simulation long enough that per-run wall clock dominates partition
// startup cost.
const scaleRefsMultiplier = 10

// parallelScaleConfig is the covered-class configuration the scaling
// experiment measures: the 64-processor private-workload machine on
// the directory protocol, the largest configuration the profile table
// carries.
func parallelScaleConfig(refs int, seed uint64, partitions int) repro.Config {
	return repro.Config{
		Protocol:       "directory-ring",
		Benchmark:      "PRIVATE",
		CPUs:           64,
		ProcCycleNS:    5,
		RingMHz:        500,
		RingWidthBits:  32,
		DataRefsPerCPU: refs,
		Seed:           seed,
		Parallel:       partitions,
	}
}

// canonResult strips the execution-metadata fields from a result so
// two runs can be compared on simulated outcomes alone.
func canonResult(r repro.Result) repro.Result {
	r.Partitions = 0
	r.ParallelFallback = ""
	r.ParallelWindows = 0
	r.ParallelCrossEvents = 0
	r.ParallelWindowPS = 0
	r.ParallelCrossWindows = 0
	r.BarrierStallNS = nil
	return r
}

// runParallelScale measures wall clock and verifies result identity for
// the covered-class machine across partition counts 1..maxP. Each
// point is the best of two runs, damping scheduler noise.
func runParallelScale(refs int, seed uint64, maxP int) (*parallelScaleReport, string, error) {
	if maxP <= 1 {
		maxP = runtime.NumCPU()
		if maxP > 8 {
			maxP = 8
		}
		// Even on small hosts, sweep to 4 partitions: identity under
		// real concurrency is worth checking regardless of whether the
		// cores exist to make it faster.
		if maxP < 4 {
			maxP = 4
		}
	}
	var plist []int
	for p := 1; p <= maxP; p *= 2 {
		plist = append(plist, p)
	}
	if last := plist[len(plist)-1]; last != maxP {
		plist = append(plist, maxP)
	}

	srefs := refs * scaleRefsMultiplier
	rep := &parallelScaleReport{
		Benchmark:  "PRIVATE",
		CPUs:       64,
		RefsPerCPU: srefs,
		Seed:       seed,
		NumCPU:     runtime.NumCPU(),
	}

	run := func(p int) (*repro.Result, time.Duration, error) {
		var best *repro.Result
		var wall time.Duration
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			res, err := repro.Run(parallelScaleConfig(srefs, seed, p))
			w := time.Since(start)
			if err != nil {
				return nil, 0, err
			}
			if best == nil || w < wall {
				best, wall = res, w
			}
		}
		return best, wall, nil
	}

	ref, seqWall, err := run(1)
	if err != nil {
		return nil, "", err
	}
	rep.SeqWallNS = seqWall.Nanoseconds()
	want := canonResult(*ref)

	var b strings.Builder
	fmt.Fprintf(&b, "parallel kernel scaling: %s/%d CPUs, %d refs/CPU, %d host cores\n",
		rep.Benchmark, rep.CPUs, srefs, rep.NumCPU)
	fmt.Fprintf(&b, "%5s %10s %8s %9s %7s %s\n",
		"parts", "wall", "speedup", "identical", "windows", "barrier stall / partition")
	for _, p := range plist {
		res, wall, err := run(p)
		if err != nil {
			return nil, "", err
		}
		pt := parallelScalePoint{
			Partitions:     res.Partitions,
			WallNS:         wall.Nanoseconds(),
			Speedup:        float64(seqWall) / float64(wall),
			Identical:      reflect.DeepEqual(canonResult(*res), want),
			Fallback:       res.ParallelFallback,
			Windows:        res.ParallelWindows,
			CrossEvents:    res.ParallelCrossEvents,
			BarrierStallNS: res.BarrierStallNS,
		}
		rep.Points = append(rep.Points, pt)
		fmt.Fprintf(&b, "%5d %10s %7.2fx %9v %7d %s\n",
			pt.Partitions, wall.Round(time.Millisecond), pt.Speedup,
			pt.Identical, pt.Windows, stallSummary(pt.BarrierStallNS))
		if !pt.Identical {
			return nil, "", fmt.Errorf(
				"parallelscale: P=%d result diverged from sequential", p)
		}
		if pt.Fallback != "" {
			return nil, "", fmt.Errorf(
				"parallelscale: covered configuration fell back: %s", pt.Fallback)
		}
	}
	return rep, b.String(), nil
}

// stallSummary renders per-partition barrier-stall wall clock.
func stallSummary(ns []int64) string {
	if len(ns) == 0 {
		return "-"
	}
	parts := make([]string, len(ns))
	for i, v := range ns {
		parts[i] = time.Duration(v).Round(100 * time.Microsecond).String()
	}
	return strings.Join(parts, " ")
}
