package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRunPrintsStats(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "MP3D", "-cpus", "16", "-refs", "2000"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"MP3D/16:", "data refs", "shared refs"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWritesReplayableTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mp3d.trc.gz")
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "MP3D", "-cpus", "8", "-refs", "500", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("missing write confirmation:\n%s", out.String())
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		t.Fatalf("written trace does not read back: %v", err)
	}
	if tr.TotalRefs() == 0 {
		t.Error("written trace is empty")
	}
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bench", "MP3D", "-cpus", "3"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no profile") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
