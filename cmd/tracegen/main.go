// Command tracegen materializes one synthetic benchmark workload as a
// binary multiprocessor reference trace, and prints its Table 2-style
// characteristics. The traces stand in for the paper's CacheMire/MIT
// inputs (see DESIGN.md, substitutions); files written here can be
// replayed through the simulators via the trace reader.
//
// Usage:
//
//	tracegen -bench MP3D -cpus 16 -refs 10000 -o mp3d16.trc.gz   # .gz compresses transparently
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench = fs.String("bench", "MP3D", "benchmark: MP3D | WATER | CHOLESKY | FFT | WEATHER | SIMPLE")
		cpus  = fs.Int("cpus", 16, "processor count (must match a Table 2 profile)")
		refs  = fs.Int("refs", 10000, "data references per processor")
		seed  = fs.Uint64("seed", 1, "random seed")
		out   = fs.String("o", "", "output file (omit to only print statistics)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	prof, ok := workload.ProfileFor(*bench, *cpus)
	if !ok {
		fmt.Fprintf(stderr, "tracegen: no profile %s/%d\n", *bench, *cpus)
		return 1
	}
	gen := workload.NewGenerator(workload.Config{
		Profile:        prof,
		DataRefsPerCPU: *refs,
		Seed:           *seed,
	})
	tr := workload.Materialize(prof.Name, gen)
	st := trace.Measure(tr)

	fmt.Fprintf(stdout, "%s/%d: %d refs total\n", prof.Name, prof.CPUs, tr.TotalRefs())
	fmt.Fprintf(stdout, "  data refs        : %d\n", st.DataRefs)
	fmt.Fprintf(stdout, "  instr refs       : %d\n", st.InstrRefs)
	fmt.Fprintf(stdout, "  private refs     : %d (%.0f%% writes; paper %.0f%%)\n",
		st.PrivateRefs, 100*st.PrivateWriteFrac(), 100*prof.PrivateWriteFrac)
	fmt.Fprintf(stdout, "  shared refs      : %d (%.0f%% writes; paper %.0f%%)\n",
		st.SharedRefs, 100*st.SharedWriteFrac(), 100*prof.SharedWriteFrac)

	if *out == "" {
		return 0
	}
	if err := trace.WriteFile(*out, tr); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	if info, err := os.Stat(*out); err == nil {
		fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", *out, info.Size())
	}
	return 0
}
