// Command tracegen materializes one synthetic benchmark workload as a
// binary multiprocessor reference trace, and prints its Table 2-style
// characteristics. The traces stand in for the paper's CacheMire/MIT
// inputs (see DESIGN.md, substitutions); files written here can be
// replayed through the simulators via the trace reader.
//
// Usage:
//
//	tracegen -bench MP3D -cpus 16 -refs 10000 -o mp3d16.trc.gz   # .gz compresses transparently
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "MP3D", "benchmark: MP3D | WATER | CHOLESKY | FFT | WEATHER | SIMPLE")
		cpus  = flag.Int("cpus", 16, "processor count (must match a Table 2 profile)")
		refs  = flag.Int("refs", 10000, "data references per processor")
		seed  = flag.Uint64("seed", 1, "random seed")
		out   = flag.String("o", "", "output file (omit to only print statistics)")
	)
	flag.Parse()

	prof, ok := workload.ProfileFor(*bench, *cpus)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: no profile %s/%d\n", *bench, *cpus)
		os.Exit(1)
	}
	gen := workload.NewGenerator(workload.Config{
		Profile:        prof,
		DataRefsPerCPU: *refs,
		Seed:           *seed,
	})
	tr := workload.Materialize(prof.Name, gen)
	st := trace.Measure(tr)

	fmt.Printf("%s/%d: %d refs total\n", prof.Name, prof.CPUs, tr.TotalRefs())
	fmt.Printf("  data refs        : %d\n", st.DataRefs)
	fmt.Printf("  instr refs       : %d\n", st.InstrRefs)
	fmt.Printf("  private refs     : %d (%.0f%% writes; paper %.0f%%)\n",
		st.PrivateRefs, 100*st.PrivateWriteFrac(), 100*prof.PrivateWriteFrac)
	fmt.Printf("  shared refs      : %d (%.0f%% writes; paper %.0f%%)\n",
		st.SharedRefs, 100*st.SharedWriteFrac(), 100*prof.SharedWriteFrac)

	if *out == "" {
		return
	}
	if err := trace.WriteFile(*out, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if info, err := os.Stat(*out); err == nil {
		fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
	}
}
