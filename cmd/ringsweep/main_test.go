package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCycleSweep(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-param", "cycle", "-from", "5", "-to", "10", "-step", "5",
		"-refs", "200", "-cpus", "8"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // header + 2 sweep points
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "Uproc(%)") {
		t.Errorf("missing header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "5.0ns") || !strings.HasPrefix(lines[2], "10.0ns") {
		t.Errorf("unexpected sweep labels:\n%s", out.String())
	}
}

func TestRunCPUSweepWithStatsAndCache(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	args := []string{"-param", "cpus", "-bench", "WATER", "-refs", "200",
		"-cachedir", dir, "-stats"}
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "engine:") {
		t.Errorf("missing -stats output:\n%s", out.String())
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(m) == 0 {
		t.Error("cache directory has no result artifacts")
	}

	// A second run against the same cache must agree and hit disk.
	var out2 bytes.Buffer
	if code := run(context.Background(), args, &out2, &errb); code != 0 {
		t.Fatalf("rerun exit %d, stderr: %s", code, errb.String())
	}
	strip := func(s string) string { return strings.SplitAfter(s, "engine:")[0] }
	if strip(out.String()) != strip(out2.String()) {
		t.Errorf("cache-cold and cache-warm sweeps disagree:\n%s\nvs\n%s",
			out.String(), out2.String())
	}
}

func TestRunCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	code := run(ctx, []string{"-param", "cycle", "-from", "5", "-to", "10", "-step", "5",
		"-refs", "200", "-cpus", "8"}, &out, &errb)
	if code != 1 {
		t.Fatalf("cancelled sweep exit %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "context canceled") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestRunRejectsUnknownParam(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-param", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown parameter") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-bench", "NOSUCH", "-refs", "100"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
