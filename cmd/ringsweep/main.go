// Command ringsweep sweeps one design parameter of a simulated machine
// and prints the resulting metric series — the quickest way to explore
// the design space the paper maps out. Sweep points are independent
// simulations, so they fan out over a worker pool and are memoized by
// content, making repeated and overlapping sweeps cheap.
//
// Usage:
//
//	ringsweep -param cycle -from 1 -to 20 -step 1 -bench MP3D -cpus 16
//	ringsweep -param ringmhz -from 125 -to 1000 -step 125
//	ringsweep -param cpus -protocol snoop-bus -bench MP3D
//	ringsweep -workers 8 -cachedir .sweepcache -stats
//
// Sweepable parameters: cycle (processor cycle ns), ringmhz, busmhz,
// cpus (restricted to the benchmark's profiled sizes).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/internal/sweep"
)

func main() {
	// Ctrl-C / SIGTERM cancel the context, which cancels undispatched
	// sweep jobs; in-progress simulations finish into the cache.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		protocol = fs.String("protocol", "snoop-ring", "protocol: snoop-ring | directory-ring | sci-ring | snoop-bus | hier-ring")
		bench    = fs.String("bench", "MP3D", "benchmark name")
		cpus     = fs.Int("cpus", 16, "processor count (fixed unless sweeping cpus)")
		cycle    = fs.Float64("cycle", 5, "processor cycle ns (fixed unless sweeping cycle)")
		param    = fs.String("param", "cycle", "parameter to sweep: cycle | ringmhz | busmhz | cpus")
		from     = fs.Float64("from", 1, "sweep start")
		to       = fs.Float64("to", 20, "sweep end")
		step     = fs.Float64("step", 1, "sweep step")
		refs     = fs.Int("refs", 2000, "data references per processor")
		seed     = fs.Uint64("seed", 1, "random seed")
		workers  = fs.Int("workers", 0, "worker pool size (0 = all CPUs)")
		cacheDir = fs.String("cachedir", "", "persist results to this content-addressed cache directory")
		stats    = fs.Bool("stats", false, "print engine statistics after the sweep")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	base := sweep.Job{
		Protocol:       *protocol,
		Benchmark:      *bench,
		CPUs:           *cpus,
		ProcCyclePS:    int64(*cycle * 1000),
		DataRefsPerCPU: *refs,
		Seed:           *seed,
	}

	var jobs []sweep.Job
	var labels []string
	add := func(label string, j sweep.Job) {
		labels = append(labels, label)
		jobs = append(jobs, j)
	}
	switch *param {
	case "cycle":
		for v := *from; v <= *to; v += *step {
			j := base
			j.ProcCyclePS = int64(v * 1000)
			add(fmt.Sprintf("%.1fns", v), j)
		}
	case "ringmhz":
		for v := *from; v <= *to; v += *step {
			j := base
			j.RingClockPS = int64(1e6 / v)
			add(fmt.Sprintf("%.0fMHz", v), j)
		}
	case "busmhz":
		for v := *from; v <= *to; v += *step {
			j := base
			j.BusClockPS = int64(1e6 / v)
			add(fmt.Sprintf("%.0fMHz", v), j)
		}
	case "cpus":
		for _, b := range repro.Benchmarks() {
			if b.Name != *bench {
				continue
			}
			j := base
			j.CPUs = b.CPUs
			add(fmt.Sprintf("%dcpu", b.CPUs), j)
		}
	default:
		fmt.Fprintf(stderr, "ringsweep: unknown parameter %q\n", *param)
		return 1
	}

	eng := sweep.New(sweep.Options{Workers: *workers, CacheDir: *cacheDir})
	results, err := eng.Run(ctx, jobs)
	if err != nil {
		fmt.Fprintln(stderr, "ringsweep:", err)
		return 1
	}

	fmt.Fprintf(stdout, "%-10s %10s %10s %12s %10s\n", *param, "Uproc(%)", "Unet(%)", "missLat(ns)", "exec(us)")
	for i, res := range results {
		s := res.Summary()
		fmt.Fprintf(stdout, "%-10s %10.1f %10.1f %12.0f %10.1f\n",
			labels[i], 100*s.ProcUtil, 100*s.NetworkUtil, s.MissLatencyNS, s.ExecTimeUS)
	}

	if *stats {
		st := eng.Stats()
		fmt.Fprintf(stdout, "\nengine: %d workers, %d jobs (%d computed, %d cached, %d from disk)\n",
			st.Workers, st.Done, st.Computed, st.CacheHits, st.DiskHits)
		fmt.Fprintf(stdout, "        %.2fs exec wall, %v mean/job, %.0f simulated ns/s\n",
			st.ExecWall.Seconds(), st.MeanJobWall, st.SimNSPerSec)
	}
	return 0
}
