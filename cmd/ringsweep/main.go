// Command ringsweep sweeps one design parameter of a simulated machine
// and prints the resulting metric series — the quickest way to explore
// the design space the paper maps out.
//
// Usage:
//
//	ringsweep -param cycle -from 1 -to 20 -step 1 -bench MP3D -cpus 16
//	ringsweep -param ringmhz -from 125 -to 1000 -step 125
//	ringsweep -param cpus -protocol snoop-bus -bench MP3D
//
// Sweepable parameters: cycle (processor cycle ns), ringmhz, busmhz,
// cpus (restricted to the benchmark's profiled sizes).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		protocol = flag.String("protocol", "snoop-ring", "protocol: snoop-ring | directory-ring | sci-ring | snoop-bus | hier-ring")
		bench    = flag.String("bench", "MP3D", "benchmark name")
		cpus     = flag.Int("cpus", 16, "processor count (fixed unless sweeping cpus)")
		cycle    = flag.Float64("cycle", 5, "processor cycle ns (fixed unless sweeping cycle)")
		param    = flag.String("param", "cycle", "parameter to sweep: cycle | ringmhz | busmhz | cpus")
		from     = flag.Float64("from", 1, "sweep start")
		to       = flag.Float64("to", 20, "sweep end")
		step     = flag.Float64("step", 1, "sweep step")
		refs     = flag.Int("refs", 2000, "data references per processor")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	fmt.Printf("%-10s %10s %10s %12s %10s\n", *param, "Uproc(%)", "Unet(%)", "missLat(ns)", "exec(us)")
	run := func(label string, cfg repro.Config) {
		res, err := repro.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ringsweep:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %10.1f %10.1f %12.0f %10.1f\n",
			label, 100*res.ProcUtil, 100*res.NetworkUtil, res.MissLatencyNS, res.ExecTimeUS)
	}

	base := repro.Config{
		Protocol:       repro.Protocol(*protocol),
		Benchmark:      *bench,
		CPUs:           *cpus,
		ProcCycleNS:    *cycle,
		DataRefsPerCPU: *refs,
		Seed:           *seed,
	}

	switch *param {
	case "cycle":
		for v := *from; v <= *to; v += *step {
			cfg := base
			cfg.ProcCycleNS = v
			run(fmt.Sprintf("%.1fns", v), cfg)
		}
	case "ringmhz":
		for v := *from; v <= *to; v += *step {
			cfg := base
			cfg.RingMHz = int(v)
			run(fmt.Sprintf("%.0fMHz", v), cfg)
		}
	case "busmhz":
		for v := *from; v <= *to; v += *step {
			cfg := base
			cfg.BusMHz = int(v)
			run(fmt.Sprintf("%.0fMHz", v), cfg)
		}
	case "cpus":
		for _, b := range repro.Benchmarks() {
			if b.Name != *bench {
				continue
			}
			cfg := base
			cfg.CPUs = b.CPUs
			run(fmt.Sprintf("%dcpu", b.CPUs), cfg)
		}
	default:
		fmt.Fprintf(os.Stderr, "ringsweep: unknown parameter %q\n", *param)
		os.Exit(1)
	}
}
