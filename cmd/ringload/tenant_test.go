package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/serve"
	"repro/internal/sweep"
	"repro/internal/tenant"
)

func startTenantRingserved(t *testing.T) string {
	t.Helper()
	reg, err := tenant.New([]tenant.Tenant{
		{ID: "alpha", Keys: []string{"ka"}, Weight: 2},
		{ID: "beta", Keys: []string{"kb"}},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := sweep.New(sweep.Options{
		Workers:   4,
		Executors: map[string]sweep.Executor{"": fastExecutor},
	})
	ts := httptest.NewServer(serve.New(serve.Options{Engine: eng, Tenants: reg}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestLoadMultiTenantRun(t *testing.T) {
	url := startTenantRingserved(t)
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-url", url,
		"-requests", "60",
		"-jobs", "4",
		"-concurrency", "4",
		"-tenants", "alpha=ka,beta=kb",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad artifact %s: %v", data, err)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Errorf("errors=%d rejected=%d, want 0/0", rep.Errors, rep.Rejected)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("per-tenant blocks = %d, want 2: %+v", len(rep.Tenants), rep.Tenants)
	}
	for i, want := range []string{"alpha", "beta"} {
		tv := rep.Tenants[i]
		if tv.Label != want || tv.Requests != 30 || tv.Errors != 0 {
			t.Errorf("tenant %d = %+v, want label %s with 30 requests", i, tv, want)
		}
		if tv.P50MS <= 0 || tv.P99MS < tv.P50MS {
			t.Errorf("tenant %s has implausible percentiles: %+v", want, tv)
		}
	}
}

func TestLoadSingleKeyAgainstStrictServer(t *testing.T) {
	url := startTenantRingserved(t)
	var stdout, stderr bytes.Buffer
	// Without a key every request is 401 — a hard failure, not a 429.
	code := run(context.Background(), []string{
		"-url", url, "-requests", "8", "-jobs", "2", "-concurrency", "2",
	}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("keyless run against strict server: exit %d, want 1", code)
	}
	// With -apikey the same run succeeds.
	stdout.Reset()
	stderr.Reset()
	code = run(context.Background(), []string{
		"-url", url, "-requests", "8", "-jobs", "2", "-concurrency", "2",
		"-apikey", "ka",
	}, &stdout, &stderr)
	if code != 0 {
		t.Errorf("keyed run: exit %d\nstderr: %s", code, stderr.String())
	}
}

func TestLoadBadTenantsFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-tenants", "nokey"}, &out, &out); code != 1 {
		t.Errorf("bad -tenants entry: exit %d, want 1", code)
	}
}
