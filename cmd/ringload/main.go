// Command ringload drives a running ringserved instance with a
// closed-loop job workload and reports serving throughput, latency
// percentiles, and the cache-hit rate the memoizing engine achieved.
// It scrapes the server's /metrics endpoint before and after the run,
// so the report carries both views of the same load: client-observed
// latency and the server-side ringsim_serve_request_seconds histogram
// delta (plus span counters when the server traces its jobs).
//
// The workload is a pool of -jobs distinct simulation points cycled
// round-robin across -requests total submissions from -concurrency
// workers. With requests >> jobs the steady state is cache-hit
// dominated, which is exactly the serving economics the layer exists
// for; -out writes the measurements as a BENCH artifact.
//
// Multi-endpoint mode drives a whole fleet from one client: -addrs
// takes a comma-separated endpoint list, requests are dispatched
// round-robin across it, and the report carries a per-endpoint stats
// block next to the aggregate. The /metrics scrape targets the first
// endpoint (by convention the coordinator).
//
// Multi-tenant mode drives a tenant-aware server: -apikey sends one
// Authorization: Bearer key on every request; -tenants takes
// comma-separated label=key pairs, cycles submissions across them,
// and the report carries per-tenant latency percentiles plus 429
// rejection counts — the client-side view of the fair queue and
// quota enforcement.
//
// Usage:
//
//	ringload -url http://localhost:8080 -requests 200 -jobs 8
//	ringload -url http://localhost:8080 -concurrency 16 -out BENCH_2.json
//	ringload -addrs http://coord:8080,http://w1:8081,http://w2:8082 -out BENCH_5.json
//	ringload -tenants batch=bk,inter=ik -requests 400 -out BENCH_6.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs/reqtrace"
	olog "repro/internal/obs/slog"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// report is the JSON artifact ringload emits: one load-test run
// against one server.
type report struct {
	URL          string  `json:"url"`
	Jobs         int     `json:"distinct_jobs"`
	Requests     int     `json:"requests"`
	Concurrency  int     `json:"concurrency"`
	Errors       int     `json:"errors"`
	Rejected     int     `json:"rejected,omitempty"`
	WallNS       int64   `json:"wall_ns"`
	ReqPerSec    float64 `json:"req_per_sec"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`

	// SampleRequestID is the X-Ringsim-Request ID of the first
	// successful uncached submission — a request that actually computed
	// (and, on a coordinator, dispatched), so GET
	// /v1/requests/{id}/trace on the server shows a full span tree.
	SampleRequestID string `json:"sample_request_id,omitempty"`

	// Server holds the server-side view of the same run, from /metrics
	// histogram deltas. Nil when the server's /metrics was unreachable.
	Server *serverView `json:"server,omitempty"`

	// Endpoints holds the per-endpoint breakdown in -addrs order;
	// omitted in single-endpoint runs.
	Endpoints []endpointView `json:"endpoints,omitempty"`

	// Tenants holds the per-tenant breakdown in -tenants order;
	// omitted outside multi-tenant runs.
	Tenants []tenantView `json:"tenants,omitempty"`
}

// tenantView is one tenant's share of a multi-tenant run. Rejected
// counts 429 answers (rate limit or quota) — an expected shedding
// outcome under flood, kept apart from transport/server errors.
type tenantView struct {
	Label        string  `json:"label"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	Rejected     int     `json:"rejected"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
}

// endpointView is one endpoint's share of a multi-endpoint run.
type endpointView struct {
	URL          string  `json:"url"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	Rejected     int     `json:"rejected,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
}

// serverView is what the server itself measured over the load run:
// the delta of its ringsim_serve_request_seconds{endpoint="jobs"}
// histogram between the before and after scrapes, plus observability
// span counters when the engine runs with tracing enabled.
type serverView struct {
	Requests     uint64  `json:"requests"`
	MeanMS       float64 `json:"mean_ms"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	SpansObs     uint64  `json:"obs_spans,omitempty"`
	SpansSampled uint64  `json:"obs_spans_sampled,omitempty"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url         = fs.String("url", "http://localhost:8080", "ringserved base URL")
		addrs       = fs.String("addrs", "", "comma-separated endpoint list for round-robin fleet dispatch (overrides -url; first endpoint is scraped for the server view)")
		requests    = fs.Int("requests", 200, "total job submissions")
		jobs        = fs.Int("jobs", 8, "distinct jobs in the workload pool")
		concurrency = fs.Int("concurrency", 8, "concurrent client workers")
		bench       = fs.String("bench", "MP3D", "benchmark for generated jobs")
		cpus        = fs.Int("cpus", 8, "processors per generated job")
		refs        = fs.Int("refs", 500, "data references per processor")
		kind        = fs.String("kind", "", "job kind (empty = simulator; \"sleep\" needs a -synthexec server)")
		deadlineMS  = fs.Int("deadline", 0, "per-request deadline_ms (0 = none)")
		apikey      = fs.String("apikey", "", "API key sent as Authorization: Bearer on every request")
		tenantsCSV  = fs.String("tenants", "", "comma-separated label=key pairs; submissions cycle across them and the report carries a per-tenant block (overrides -apikey)")
		out         = fs.String("out", "", "write the report JSON to this file")
		version     = fs.Bool("version", false, "print build version and exit")
		logLevel    = fs.String("loglevel", "info", "structured JSON log level on stderr (debug logs every request with its ID, status and latency)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "ringload %s\n", buildinfo.Read())
		return 0
	}
	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "ringload:", err)
		return 1
	}
	logger := olog.New(stderr, level, "ringload")
	if *requests <= 0 || *jobs <= 0 || *concurrency <= 0 {
		fmt.Fprintln(stderr, "ringload: requests, jobs and concurrency must be positive")
		return 1
	}
	endpoints := []string{*url}
	if *addrs != "" {
		endpoints = endpoints[:0]
		for _, a := range strings.Split(*addrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				endpoints = append(endpoints, strings.TrimSuffix(a, "/"))
			}
		}
		if len(endpoints) == 0 {
			fmt.Fprintln(stderr, "ringload: -addrs has no endpoints")
			return 1
		}
	}
	scrapeBase := endpoints[0]

	// Tenant identities the submissions cycle through. Outside
	// multi-tenant mode there is exactly one (possibly anonymous).
	type tenantSpec struct{ label, key string }
	tenantSpecs := []tenantSpec{{label: "", key: *apikey}}
	multiTenant := false
	if *tenantsCSV != "" {
		tenantSpecs = tenantSpecs[:0]
		multiTenant = true
		for _, pair := range strings.Split(*tenantsCSV, ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			label, key, ok := strings.Cut(pair, "=")
			if !ok || label == "" {
				fmt.Fprintf(stderr, "ringload: bad -tenants entry %q (want label=key)\n", pair)
				return 1
			}
			tenantSpecs = append(tenantSpecs, tenantSpec{label: label, key: key})
		}
		if len(tenantSpecs) == 0 {
			fmt.Fprintln(stderr, "ringload: -tenants has no entries")
			return 1
		}
	}

	// The workload pool: distinct points along the paper's processor
	// cycle axis, so each job is a different simulation.
	pool := make([][]byte, *jobs)
	for i := range pool {
		j := sweep.Job{
			Kind:           *kind,
			Benchmark:      *bench,
			CPUs:           *cpus,
			DataRefsPerCPU: *refs,
			ProcCyclePS:    int64(2+2*(i%10)) * 1000,
			Seed:           uint64(1 + i/10),
		}
		body, err := json.Marshal(j)
		if err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		pool[i] = body
	}

	query := ""
	if *deadlineMS > 0 {
		query = fmt.Sprintf("?deadline_ms=%d", *deadlineMS)
	}

	// Per-endpoint and per-tenant accounting, indexed like endpoints
	// and tenantSpecs.
	type bucketCounts struct {
		errs, rejected, hits int64
		lats                 []float64
	}
	var (
		next        atomic.Int64
		mu          sync.Mutex
		perEP       = make([]bucketCounts, len(endpoints))
		perTen      = make([]bucketCounts, len(tenantSpecs))
		nLatAll     int
		latAll      []float64
		hitsAll     int64
		errsAll     int64
		rejectedAll int64
		sampleReqID string
	)
	client := &http.Client{}
	before, scrapeErr := scrapeMetrics(ctx, client, scrapeBase)
	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				if n >= int64(*requests) || ctx.Err() != nil {
					return
				}
				ep := int(n % int64(len(endpoints)))
				ti := int(n % int64(len(tenantSpecs)))
				body := pool[n%int64(len(pool))]
				target := endpoints[ep] + "/v1/jobs" + query
				reqBegin := time.Now()
				status, cached, reqID := submit(ctx, client, target, body, tenantSpecs[ti].key)
				lat := time.Since(reqBegin)
				logger.Debug("request", olog.KeyRequest, reqID,
					"endpoint", endpoints[ep], "status", status,
					"cached", cached, "dur_ms", lat.Milliseconds())
				mu.Lock()
				switch status {
				case http.StatusOK:
					if cached {
						perEP[ep].hits++
						perTen[ti].hits++
						hitsAll++
					} else if sampleReqID == "" && reqID != "" {
						// First computed (uncached) success: the request
						// whose trace shows the full execution path.
						sampleReqID = reqID
					}
					perEP[ep].lats = append(perEP[ep].lats, lat.Seconds())
					perTen[ti].lats = append(perTen[ti].lats, lat.Seconds())
					latAll = append(latAll, lat.Seconds())
				case http.StatusTooManyRequests:
					// Expected shedding under flood: the fair queue or rate
					// limiter refused, with a Retry-After hint.
					perEP[ep].rejected++
					perTen[ti].rejected++
					rejectedAll++
				default:
					perEP[ep].errs++
					perTen[ti].errs++
					errsAll++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(begin)
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "ringload: interrupted")
		return 1
	}
	nLatAll = len(latAll)
	if nLatAll == 0 {
		fmt.Fprintf(stderr, "ringload: no request succeeded (%d errors, %d rejected); is ringserved running at %s?\n",
			errsAll, rejectedAll, scrapeBase)
		return 1
	}

	rep := report{
		URL:          scrapeBase,
		Jobs:         *jobs,
		Requests:     *requests,
		Concurrency:  *concurrency,
		Errors:       int(errsAll),
		Rejected:     int(rejectedAll),
		WallNS:       wall.Nanoseconds(),
		ReqPerSec:    float64(nLatAll) / wall.Seconds(),
		CacheHitRate: float64(hitsAll) / float64(nLatAll),
		P50MS:        1000 * stats.Percentile(latAll, 0.50),
		P95MS:        1000 * stats.Percentile(latAll, 0.95),
		P99MS:        1000 * stats.Percentile(latAll, 0.99),
		MaxMS:        1000 * stats.Percentile(latAll, 1.0),

		SampleRequestID: sampleReqID,
	}
	if len(endpoints) > 1 {
		for i, ep := range endpoints {
			ev := endpointView{
				URL:      ep,
				Requests: len(perEP[i].lats) + int(perEP[i].errs) + int(perEP[i].rejected),
				Errors:   int(perEP[i].errs),
				Rejected: int(perEP[i].rejected),
			}
			if n := len(perEP[i].lats); n > 0 {
				ev.CacheHitRate = float64(perEP[i].hits) / float64(n)
				ev.P50MS = 1000 * stats.Percentile(perEP[i].lats, 0.50)
				ev.P95MS = 1000 * stats.Percentile(perEP[i].lats, 0.95)
				ev.P99MS = 1000 * stats.Percentile(perEP[i].lats, 0.99)
			}
			rep.Endpoints = append(rep.Endpoints, ev)
		}
	}
	if multiTenant {
		for i, ts := range tenantSpecs {
			tv := tenantView{
				Label:    ts.label,
				Requests: len(perTen[i].lats) + int(perTen[i].errs) + int(perTen[i].rejected),
				Errors:   int(perTen[i].errs),
				Rejected: int(perTen[i].rejected),
			}
			if n := len(perTen[i].lats); n > 0 {
				tv.CacheHitRate = float64(perTen[i].hits) / float64(n)
				tv.P50MS = 1000 * stats.Percentile(perTen[i].lats, 0.50)
				tv.P95MS = 1000 * stats.Percentile(perTen[i].lats, 0.95)
				tv.P99MS = 1000 * stats.Percentile(perTen[i].lats, 0.99)
			}
			rep.Tenants = append(rep.Tenants, tv)
		}
	}
	if scrapeErr == nil {
		if after, err := scrapeMetrics(ctx, client, scrapeBase); err == nil {
			rep.Server = serverDelta(before, after)
		}
	}

	fmt.Fprintf(stdout, "ringload: %d ok / %d errors / %d rejected in %v (%.1f req/s)\n",
		nLatAll, rep.Errors, rep.Rejected, wall.Round(time.Millisecond), rep.ReqPerSec)
	fmt.Fprintf(stdout, "          cache-hit rate %.3f, latency p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms\n",
		rep.CacheHitRate, rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
	if rep.Server != nil {
		fmt.Fprintf(stdout, "          server view: %d requests, mean %.2fms p50 %.2fms p95 %.2fms p99 %.2fms\n",
			rep.Server.Requests, rep.Server.MeanMS, rep.Server.P50MS, rep.Server.P95MS, rep.Server.P99MS)
		if rep.Server.SpansObs > 0 {
			fmt.Fprintf(stdout, "          server spans: %d observed, %d sampled\n",
				rep.Server.SpansObs, rep.Server.SpansSampled)
		}
	} else {
		fmt.Fprintln(stdout, "          server view unavailable (/metrics scrape failed)")
	}
	if rep.SampleRequestID != "" {
		fmt.Fprintf(stdout, "          sample request %s (GET %s/v1/requests/%s/trace)\n",
			rep.SampleRequestID, scrapeBase, rep.SampleRequestID)
	}
	for _, ev := range rep.Endpoints {
		fmt.Fprintf(stdout, "          endpoint %s: %d requests, %d errors, hit rate %.3f, p50 %.2fms p99 %.2fms\n",
			ev.URL, ev.Requests, ev.Errors, ev.CacheHitRate, ev.P50MS, ev.P99MS)
	}
	for _, tv := range rep.Tenants {
		fmt.Fprintf(stdout, "          tenant %s: %d requests, %d errors, %d rejected, hit rate %.3f, p50 %.2fms p95 %.2fms p99 %.2fms\n",
			tv.Label, tv.Requests, tv.Errors, tv.Rejected, tv.CacheHitRate, tv.P50MS, tv.P95MS, tv.P99MS)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		fmt.Fprintf(stdout, "          wrote %s\n", *out)
	}
	return 0
}

// metricsSnapshot is the slice of the server's /metrics output that
// ringload compares across a run: the jobs-endpoint latency histogram
// and the observability span counters.
type metricsSnapshot struct {
	les    []float64 // sorted bucket upper bounds, +Inf last
	cum    []uint64  // cumulative counts aligned with les
	sum    float64   // histogram _sum (seconds)
	count  uint64    // histogram _count
	spans  uint64    // ringsim_obs_spans_total
	sample uint64    // ringsim_obs_spans_sampled_total
}

var jobsBucketRE = regexp.MustCompile(
	`^ringsim_serve_request_seconds_bucket\{endpoint="jobs",le="([^"]+)"\} ([0-9]+)$`)

// scrapeMetrics fetches and parses the server's /metrics page.
func scrapeMetrics(ctx context.Context, client *http.Client, base string) (*metricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("ringload: /metrics status %d", resp.StatusCode)
	}

	snap := &metricsSnapshot{}
	type bucket struct {
		le  float64
		cum uint64
	}
	var buckets []bucket
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if m := jobsBucketRE.FindStringSubmatch(line); m != nil {
			le := math.Inf(1)
			if m[1] != "+Inf" {
				if le, err = strconv.ParseFloat(m[1], 64); err != nil {
					continue
				}
			}
			n, _ := strconv.ParseUint(m[2], 10, 64)
			buckets = append(buckets, bucket{le, n})
			continue
		}
		var f float64
		switch {
		case scanValue(line, `ringsim_serve_request_seconds_sum{endpoint="jobs"}`, &f):
			snap.sum = f
		case scanValue(line, `ringsim_serve_request_seconds_count{endpoint="jobs"}`, &f):
			snap.count = uint64(f)
		case scanValue(line, "ringsim_obs_spans_total", &f):
			snap.spans = uint64(f)
		case scanValue(line, "ringsim_obs_spans_sampled_total", &f):
			snap.sample = uint64(f)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for _, b := range buckets {
		snap.les = append(snap.les, b.le)
		snap.cum = append(snap.cum, b.cum)
	}
	return snap, nil
}

// scanValue parses a `name value` exposition line for an exact
// unlabeled-or-fully-labeled series name.
func scanValue(line, name string, out *float64) bool {
	rest, ok := strings.CutPrefix(line, name+" ")
	if !ok {
		return false
	}
	f, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return false
	}
	*out = f
	return true
}

// serverDelta subtracts two snapshots and summarizes what the server
// measured in between. Buckets absent before the run count from zero
// (the before scrape may predate the endpoint's first request).
func serverDelta(before, after *metricsSnapshot) *serverView {
	prev := make(map[float64]uint64, len(before.les))
	for i, le := range before.les {
		prev[le] = before.cum[i]
	}
	les := make([]float64, 0, len(after.les))
	cum := make([]uint64, 0, len(after.les))
	for i, le := range after.les {
		les = append(les, le)
		cum = append(cum, after.cum[i]-prev[le])
	}
	n := after.count - before.count
	v := &serverView{
		Requests:     n,
		SpansObs:     after.spans - before.spans,
		SpansSampled: after.sample - before.sample,
	}
	if n > 0 {
		v.MeanMS = 1000 * (after.sum - before.sum) / float64(n)
		v.P50MS = 1000 * histQuantile(les, cum, 0.50)
		v.P95MS = 1000 * histQuantile(les, cum, 0.95)
		v.P99MS = 1000 * histQuantile(les, cum, 0.99)
	}
	return v
}

// histQuantile estimates a quantile from cumulative histogram buckets
// the way Prometheus histogram_quantile does: find the bucket holding
// the rank and interpolate linearly inside it. Ranks landing in the
// +Inf bucket clamp to the highest finite bound.
func histQuantile(les []float64, cum []uint64, q float64) float64 {
	if len(les) == 0 || cum[len(cum)-1] == 0 {
		return 0
	}
	rank := q * float64(cum[len(cum)-1])
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		upper := les[i]
		if math.IsInf(upper, 1) {
			if i == 0 {
				return 0
			}
			return les[i-1]
		}
		lower, prev := 0.0, uint64(0)
		if i > 0 {
			lower, prev = les[i-1], cum[i-1]
		}
		if c == prev {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(prev))/float64(c-prev)
	}
	return les[len(les)-1]
}

// submit posts one job, authenticated with apikey when non-empty, and
// reports the HTTP status (0 on transport failure), whether the server
// answered from cache, and the request ID the server assigned.
func submit(ctx context.Context, client *http.Client, target string, body []byte, apikey string) (status int, cached bool, reqID string) {
	req, err := http.NewRequestWithContext(ctx, "POST", target, bytes.NewReader(body))
	if err != nil {
		return 0, false, ""
	}
	req.Header.Set("Content-Type", "application/json")
	if apikey != "" {
		req.Header.Set("Authorization", "Bearer "+apikey)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, ""
	}
	defer resp.Body.Close()
	reqID = resp.Header.Get(reqtrace.HeaderRequest)
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, false, reqID
	}
	var jr struct {
		Cached bool `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return resp.StatusCode, false, reqID
	}
	return resp.StatusCode, jr.Cached, reqID
}
