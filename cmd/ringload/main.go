// Command ringload drives a running ringserved instance with a
// closed-loop job workload and reports serving throughput, latency
// percentiles, and the cache-hit rate the memoizing engine achieved.
//
// The workload is a pool of -jobs distinct simulation points cycled
// round-robin across -requests total submissions from -concurrency
// workers. With requests >> jobs the steady state is cache-hit
// dominated, which is exactly the serving economics the layer exists
// for; -out writes the measurements as a BENCH artifact.
//
// Usage:
//
//	ringload -url http://localhost:8080 -requests 200 -jobs 8
//	ringload -url http://localhost:8080 -concurrency 16 -out BENCH_2.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/stats"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// report is the JSON artifact ringload emits: one load-test run
// against one server.
type report struct {
	URL          string  `json:"url"`
	Jobs         int     `json:"distinct_jobs"`
	Requests     int     `json:"requests"`
	Concurrency  int     `json:"concurrency"`
	Errors       int     `json:"errors"`
	WallNS       int64   `json:"wall_ns"`
	ReqPerSec    float64 `json:"req_per_sec"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url         = fs.String("url", "http://localhost:8080", "ringserved base URL")
		requests    = fs.Int("requests", 200, "total job submissions")
		jobs        = fs.Int("jobs", 8, "distinct jobs in the workload pool")
		concurrency = fs.Int("concurrency", 8, "concurrent client workers")
		bench       = fs.String("bench", "MP3D", "benchmark for generated jobs")
		cpus        = fs.Int("cpus", 8, "processors per generated job")
		refs        = fs.Int("refs", 500, "data references per processor")
		deadlineMS  = fs.Int("deadline", 0, "per-request deadline_ms (0 = none)")
		out         = fs.String("out", "", "write the report JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *requests <= 0 || *jobs <= 0 || *concurrency <= 0 {
		fmt.Fprintln(stderr, "ringload: requests, jobs and concurrency must be positive")
		return 1
	}

	// The workload pool: distinct points along the paper's processor
	// cycle axis, so each job is a different simulation.
	pool := make([][]byte, *jobs)
	for i := range pool {
		j := sweep.Job{
			Benchmark:      *bench,
			CPUs:           *cpus,
			DataRefsPerCPU: *refs,
			ProcCyclePS:    int64(2+2*(i%10)) * 1000,
			Seed:           uint64(1 + i/10),
		}
		body, err := json.Marshal(j)
		if err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		pool[i] = body
	}

	target := *url + "/v1/jobs"
	if *deadlineMS > 0 {
		target = fmt.Sprintf("%s?deadline_ms=%d", target, *deadlineMS)
	}

	var (
		next      atomic.Int64
		errCount  atomic.Int64
		hitCount  atomic.Int64
		mu        sync.Mutex
		latencies []float64
	)
	client := &http.Client{}
	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				if n >= int64(*requests) || ctx.Err() != nil {
					return
				}
				body := pool[n%int64(len(pool))]
				reqBegin := time.Now()
				ok, cached := submit(ctx, client, target, body)
				lat := time.Since(reqBegin)
				if !ok {
					errCount.Add(1)
					continue
				}
				if cached {
					hitCount.Add(1)
				}
				mu.Lock()
				latencies = append(latencies, lat.Seconds())
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(begin)
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "ringload: interrupted")
		return 1
	}
	if len(latencies) == 0 {
		fmt.Fprintln(stderr, "ringload: every request failed; is ringserved running at", *url, "?")
		return 1
	}

	rep := report{
		URL:          *url,
		Jobs:         *jobs,
		Requests:     *requests,
		Concurrency:  *concurrency,
		Errors:       int(errCount.Load()),
		WallNS:       wall.Nanoseconds(),
		ReqPerSec:    float64(len(latencies)) / wall.Seconds(),
		CacheHitRate: float64(hitCount.Load()) / float64(len(latencies)),
		P50MS:        1000 * stats.Percentile(latencies, 0.50),
		P95MS:        1000 * stats.Percentile(latencies, 0.95),
		P99MS:        1000 * stats.Percentile(latencies, 0.99),
		MaxMS:        1000 * stats.Percentile(latencies, 1.0),
	}

	fmt.Fprintf(stdout, "ringload: %d ok / %d errors in %v (%.1f req/s)\n",
		len(latencies), rep.Errors, wall.Round(time.Millisecond), rep.ReqPerSec)
	fmt.Fprintf(stdout, "          cache-hit rate %.3f, latency p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms\n",
		rep.CacheHitRate, rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		fmt.Fprintf(stdout, "          wrote %s\n", *out)
	}
	return 0
}

// submit posts one job and reports success plus whether the server
// answered it from cache.
func submit(ctx context.Context, client *http.Client, target string, body []byte) (ok, cached bool) {
	req, err := http.NewRequestWithContext(ctx, "POST", target, bytes.NewReader(body))
	if err != nil {
		return false, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false, false
	}
	var jr struct {
		Cached bool `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return false, false
	}
	return true, jr.Cached
}
