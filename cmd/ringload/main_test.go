package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// fastExecutor fabricates metrics so the load test measures the
// serving layer, not the simulator.
func fastExecutor(j sweep.Job) (*core.Metrics, error) {
	m := &core.Metrics{
		ExecTime: sim.Time(int64(j.CPUs) * 1000),
		BusyTime: sim.Time(int64(j.CPUs) * 500),
		DataRefs: uint64(j.CPUs * j.DataRefsPerCPU),
	}
	m.MissLatency.Observe(600)
	return m, nil
}

func startRingserved(t *testing.T) string {
	t.Helper()
	eng := sweep.New(sweep.Options{
		Workers:   4,
		Executors: map[string]sweep.Executor{"": fastExecutor},
	})
	ts := httptest.NewServer(serve.New(serve.Options{Engine: eng}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestLoadRunReportsHitsAndPercentiles(t *testing.T) {
	url := startRingserved(t)
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-url", url,
		"-requests", "120",
		"-jobs", "4",
		"-concurrency", "6",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad artifact %s: %v", data, err)
	}
	if rep.Errors != 0 {
		t.Errorf("report has %d errors", rep.Errors)
	}
	// 120 requests over 4 distinct jobs: at most 4 cold computes, so
	// the hit rate must clear the acceptance bar comfortably.
	if rep.CacheHitRate < 0.95 {
		t.Errorf("cache-hit rate %.3f, want >= 0.95", rep.CacheHitRate)
	}
	if rep.P50MS <= 0 || rep.P95MS < rep.P50MS || rep.P99MS < rep.P95MS || rep.MaxMS < rep.P99MS {
		t.Errorf("implausible percentiles: %+v", rep)
	}
	if rep.ReqPerSec <= 0 || rep.Requests != 120 || rep.Jobs != 4 {
		t.Errorf("bad report bookkeeping: %+v", rep)
	}

	// The server-side view comes from /metrics deltas: it must see
	// exactly the 120 job submissions this run made, with plausible
	// latency percentiles.
	if rep.Server == nil {
		t.Fatal("report has no server-side view")
	}
	if rep.Server.Requests != 120 {
		t.Errorf("server-side requests = %d, want 120", rep.Server.Requests)
	}
	if rep.Server.P50MS <= 0 || rep.Server.P95MS < rep.Server.P50MS || rep.Server.P99MS < rep.Server.P95MS {
		t.Errorf("implausible server percentiles: %+v", *rep.Server)
	}
	if rep.Server.MeanMS <= 0 {
		t.Errorf("server mean = %v, want > 0", rep.Server.MeanMS)
	}
}

func TestHistQuantile(t *testing.T) {
	// Buckets (0,1], (1,2], (2,+Inf] with 10, 10, 0 samples: cumulative
	// 10, 20, 20.
	les := []float64{1, 2, math.Inf(1)}
	cum := []uint64{10, 20, 20}
	if q := histQuantile(les, cum, 0.5); q != 1 {
		t.Errorf("p50 = %v, want 1", q)
	}
	if q := histQuantile(les, cum, 0.75); q != 1.5 {
		t.Errorf("p75 = %v, want 1.5", q)
	}
	if q := histQuantile(les, cum, 1.0); q != 2 {
		t.Errorf("p100 = %v, want 2", q)
	}
	// Rank in the +Inf bucket clamps to the last finite bound.
	if q := histQuantile(les, []uint64{10, 20, 25}, 0.95); q != 2 {
		t.Errorf("+Inf-bucket quantile = %v, want 2", q)
	}
	if q := histQuantile(nil, nil, 0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestServerDeltaCountsOnlyTheRun(t *testing.T) {
	before := &metricsSnapshot{
		les: []float64{1, math.Inf(1)}, cum: []uint64{5, 5},
		sum: 2.5, count: 5, spans: 100, sample: 10,
	}
	after := &metricsSnapshot{
		les: []float64{1, math.Inf(1)}, cum: []uint64{15, 15},
		sum: 7.5, count: 15, spans: 300, sample: 30,
	}
	v := serverDelta(before, after)
	if v.Requests != 10 {
		t.Errorf("requests = %d, want 10", v.Requests)
	}
	if v.MeanMS != 500 {
		t.Errorf("mean = %v ms, want 500", v.MeanMS)
	}
	if v.SpansObs != 200 || v.SpansSampled != 20 {
		t.Errorf("spans = %d/%d, want 200/20", v.SpansObs, v.SpansSampled)
	}
}

func TestLoadRunFailsCleanlyWithoutServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-url", "http://127.0.0.1:1", // nothing listens on port 1
		"-requests", "3",
		"-jobs", "1",
		"-concurrency", "1",
	}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if stderr.Len() == 0 {
		t.Error("no diagnostic on stderr")
	}
}

func TestLoadBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-requests", "0"}, &out, &out); code != 1 {
		t.Errorf("zero requests exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-bogus"}, &out, &out); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
}

func TestLoadMultiEndpointRoundRobin(t *testing.T) {
	urls := []string{startRingserved(t), startRingserved(t), startRingserved(t)}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addrs", strings.Join(urls, ","),
		"-requests", "90",
		"-jobs", "3",
		"-concurrency", "6",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad artifact %s: %v", data, err)
	}
	if rep.Errors != 0 || rep.Requests != 90 {
		t.Fatalf("bad bookkeeping: %+v", rep)
	}
	if len(rep.Endpoints) != 3 {
		t.Fatalf("report has %d endpoint blocks, want 3", len(rep.Endpoints))
	}
	// Round-robin dispatch: 90 requests over 3 endpoints is exactly 30
	// each, and the per-endpoint tallies must sum to the aggregate.
	var sum int
	for _, ep := range rep.Endpoints {
		if ep.Requests != 30 {
			t.Errorf("endpoint %s got %d requests, want 30", ep.URL, ep.Requests)
		}
		if ep.Errors != 0 {
			t.Errorf("endpoint %s has %d errors", ep.URL, ep.Errors)
		}
		if ep.P50MS <= 0 || ep.P95MS < ep.P50MS || ep.P99MS < ep.P95MS {
			t.Errorf("implausible percentiles for %s: %+v", ep.URL, ep)
		}
		sum += ep.Requests
	}
	if sum != rep.Requests {
		t.Errorf("endpoint requests sum %d != aggregate %d", sum, rep.Requests)
	}
	// Each endpoint is its own cache domain: every one pays its own 3
	// cold computes, so the aggregate hit rate reflects 9 misses in 90.
	if rep.CacheHitRate < 0.85 {
		t.Errorf("cache-hit rate %.3f, want >= 0.85", rep.CacheHitRate)
	}
	// The stdout summary carries a per-endpoint stats block.
	for _, u := range urls {
		if !strings.Contains(stdout.String(), u) {
			t.Errorf("stdout summary missing endpoint %s:\n%s", u, stdout.String())
		}
	}
}

func TestLoadSingleEndpointReportOmitsEndpointBlocks(t *testing.T) {
	url := startRingserved(t)
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addrs", url, // one address behaves exactly like -url
		"-requests", "10",
		"-jobs", "2",
		"-concurrency", "2",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Endpoints) != 0 {
		t.Errorf("single-endpoint report carries %d endpoint blocks, want 0", len(rep.Endpoints))
	}
}
