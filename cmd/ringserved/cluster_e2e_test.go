package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func waitForMetric(t *testing.T, url, needle string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, body := getBody(t, url+"/metrics"); strings.Contains(body, needle) {
			return
		}
		if time.Now().After(deadline) {
			_, body := getBody(t, url+"/metrics")
			t.Fatalf("metrics never showed %q:\n%s", needle, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterModeEndToEnd boots a coordinator and two workers as the
// real daemon processes would run them (same run() entrypoint, real
// TCP), submits synthetic jobs through the coordinator's unchanged
// public API, reads a result back through a worker's public API via
// peer fetch, then drains one worker and checks the fleet shrinks.
func TestClusterModeEndToEnd(t *testing.T) {
	coordURL, coordCancel, coordExit, _ := startServer(t,
		"-coordinator", "-workers", "8", "-synthexec", "-execretries", "3", "-hbttl", "3s")
	defer coordCancel()

	w1URL, w1Cancel, w1Exit, _ := startServer(t,
		"-worker", "-join", coordURL, "-workers", "2", "-synthexec", "-heartbeat", "100ms", "-id", "w1")
	defer w1Cancel()
	_, w2Cancel, w2Exit, _ := startServer(t,
		"-worker", "-join", coordURL, "-workers", "2", "-synthexec", "-heartbeat", "100ms", "-id", "w2")
	defer w2Cancel()

	waitForMetric(t, coordURL, `ringsim_cluster_workers{state="live"} 2`)

	// Jobs of kind "sleep" run on whichever worker owns their hash; the
	// coordinator's public contract (status, hash, source) is untouched.
	var hash string
	for seed := 1; seed <= 4; seed++ {
		payload := fmt.Sprintf(`{"kind":"sleep","cpus":1,"data_refs_per_cpu":2000,"seed":%d}`, seed)
		resp, err := http.Post(coordURL+"/v1/jobs", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var jr struct {
			Hash   string `json:"hash"`
			Source string `json:"source"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || jr.Source != "computed" {
			t.Fatalf("submit seed %d: status %d %+v", seed, resp.StatusCode, jr)
		}
		hash = jr.Hash
	}

	// Dispatches are visible in the coordinator's cluster metrics.
	if _, body := getBody(t, coordURL+"/metrics"); !strings.Contains(body, "ringsim_cluster_dispatches_total") {
		t.Error("coordinator /metrics missing cluster dispatch series")
	}

	// A worker that never saw the job serves it through the replicated
	// tier: worker-local miss, coordinator relay, adopt.
	code, body := getBody(t, w1URL+"/v1/results/"+hash)
	if code != http.StatusOK {
		t.Fatalf("worker result relay: status %d: %s", code, body)
	}
	var wr struct {
		Hash   string `json:"hash"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal([]byte(body), &wr); err != nil || wr.Hash != hash {
		t.Fatalf("worker relay result %s: %v", body, err)
	}

	// Draining a worker removes it from the ring immediately (leave,
	// not TTL expiry), and the fleet keeps serving.
	w1Cancel()
	select {
	case code := <-w1Exit:
		if code != 0 {
			t.Fatalf("worker drain exit %d", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never exited")
	}
	waitForMetric(t, coordURL, `ringsim_cluster_workers{state="live"} 1`)

	resp, err := http.Post(coordURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"sleep","cpus":1,"data_refs_per_cpu":2000,"seed":99}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit after worker drain: status %d", resp.StatusCode)
	}

	w2Cancel()
	<-w2Exit
	coordCancel()
	<-coordExit
}

// TestClusterNoWorkers503: a coordinator with an empty fleet refuses
// submissions with 503 (substrate unavailable), not 400.
func TestClusterNoWorkers503(t *testing.T) {
	coordURL, cancel, exit, _ := startServer(t, "-coordinator", "-synthexec")
	defer func() { cancel(); <-exit }()

	resp, err := http.Post(coordURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"sleep","cpus":1,"data_refs_per_cpu":100,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("empty fleet submit: status %d, want 503", resp.StatusCode)
	}
}

// TestClusterFlagValidation: the mode flags reject nonsensical
// combinations before binding anything.
func TestClusterFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-coordinator", "-worker"}, &out, &out); code != 1 {
		t.Errorf("-coordinator -worker exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-worker"}, &out, &out); code != 1 {
		t.Errorf("-worker without -join exit %d, want 1", code)
	}
}
