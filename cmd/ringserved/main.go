// Command ringserved runs the simulation-as-a-service HTTP layer: a
// long-lived daemon that accepts sweep jobs, batches, and named paper
// experiments over HTTP/JSON, schedules them through one shared
// memoizing engine, and streams progress as Server-Sent Events.
//
// Usage:
//
//	ringserved -addr :8080 -cachedir .servecache
//	ringserved -queue 128 -inflight 8 -discipline sjf
//	ringserved -tenants tenants.json -allowanon=false
//
// Multi-tenant mode (see DESIGN.md §13): -tenants loads API keys,
// fair-queue weights, token-bucket rate limits, and admission quotas;
// requests authenticate with Authorization: Bearer <key> and the
// admission queue serves tenants by weighted deficit round robin.
// Without -tenants every request maps to one anonymous tenant and
// behavior is identical to earlier versions.
//
// Cluster modes (see DESIGN.md §12): one daemon becomes the
// coordinator of a worker fleet, placing jobs by consistent hashing on
// their content hashes and stealing them onto live workers when one is
// lost; the public API is unchanged. Workers join the coordinator and
// execute forwarded jobs on their local engines.
//
//	ringserved -coordinator -addr :8080 -inflight 16 -workers 16
//	ringserved -worker -join http://coord:8080 -addr :8081 -workers 2
//
// Routes (see DESIGN.md §9):
//
//	POST /v1/jobs                  submit one simulation point
//	POST /v1/sweeps                submit a batch
//	GET  /v1/experiments           list named experiments
//	POST /v1/experiments/{name}    run a named experiment
//	GET  /v1/results/{hash}        idempotent lookup by content hash
//	                               (cluster nodes fall back to peers)
//	GET  /v1/results/{hash}/trace  Perfetto trace of a traced run (needs -tracesample)
//	GET  /v1/events                live progress stream (SSE)
//	GET  /v1/usage                 the caller's usage record (?all=1: every tenant)
//	GET  /healthz, /metrics        liveness and Prometheus metrics
//	/internal/v1/*                 cluster plane (exec, results, join,
//	                               heartbeat, leave, health)
//
// SIGINT/SIGTERM begin a graceful drain: new submissions receive 503
// while queued and in-flight requests run to completion (bounded by
// -draintimeout), then the process exits 0. A draining worker leaves
// the coordinator's ring immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the DefaultServeMux, served only on -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
	olog "repro/internal/obs/slog"
	"repro/internal/serve"
	"repro/internal/sweep"
	"repro/internal/tenant"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "engine worker pool size (0 = all CPUs); in -coordinator mode this is the dispatch parallelism and should cover the fleet's total capacity")
		cacheDir     = fs.String("cachedir", "", "persist results to this content-addressed cache directory")
		queueDepth   = fs.Int("queue", 64, "admission queue depth (overflow returns 429)")
		maxInFlight  = fs.Int("inflight", 0, "max concurrently executing requests (0 = all CPUs)")
		discipline   = fs.String("discipline", "fcfs", "admission queue discipline: fcfs | sjf")
		maxDeadline  = fs.Duration("maxdeadline", 2*time.Minute, "cap on client-requested deadlines")
		drainTimeout = fs.Duration("draintimeout", 30*time.Second, "max wait for in-flight work on shutdown")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		traceSample  = fs.Int("tracesample", 0, "trace computed jobs, recording every k-th transaction span (0 = tracing off)")
		parallel     = fs.Int("parallel", 1, "partition each covered simulation across this many event-kernel shards (1 = sequential; uncovered configs fall back loudly)")
		tenantsFile  = fs.String("tenants", "", "tenants JSON file: API keys, fair-queue weights, rate limits, quotas (empty = anonymous single-tenant mode)")
		allowAnon    = fs.Bool("allowanon", true, "accept keyless requests as the anonymous tenant; -allowanon=false requires -tenants and rejects requests without a known API key")

		version   = fs.Bool("version", false, "print build version and exit")
		logLevel  = fs.String("loglevel", "info", "structured JSON log level on stderr: debug | info | warn | error")
		reqTraces = fs.Int("reqtrace", reqtrace.DefaultCapacity, "retain span trees for this many recent requests, served at GET /v1/requests/{id}/trace (0 = request IDs only, no span recording)")

		coordMode   = fs.Bool("coordinator", false, "run as cluster coordinator: dispatch jobs to joined workers instead of executing locally")
		workerMode  = fs.Bool("worker", false, "run as cluster worker: join a coordinator and execute forwarded jobs")
		joinURL     = fs.String("join", "", "coordinator base URL a -worker joins (e.g. http://coord:8080)")
		advertise   = fs.String("advertise", "", "base URL the coordinator dials this worker back on (default: http://127.0.0.1:<port> from -addr)")
		workerID    = fs.String("id", "", "stable worker identity on the placement ring (default: the advertise URL)")
		heartbeat   = fs.Duration("heartbeat", time.Second, "worker heartbeat period")
		hbTTL       = fs.Duration("hbttl", 5*time.Second, "coordinator: heartbeat age after which a worker is considered down")
		execTimeout = fs.Duration("exectimeout", 10*time.Minute, "coordinator: bound on one remote job execution")
		execRetries = fs.Int("execretries", 3, "coordinator: dispatch attempts per job across distinct workers")
		synthExec   = fs.Bool("synthexec", false, "register the fixed-service-time calibration executor for jobs of kind \"sleep\" (benchmarking only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "ringserved %s\n", buildinfo.Read())
		return 0
	}
	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "ringserved:", err)
		return 1
	}
	if *coordMode && *workerMode {
		fmt.Fprintln(stderr, "ringserved: -coordinator and -worker are mutually exclusive")
		return 1
	}
	if *workerMode && *joinURL == "" {
		fmt.Fprintln(stderr, "ringserved: -worker requires -join <coordinator URL>")
		return 1
	}

	disc, err := serve.ParseDiscipline(*discipline)
	if err != nil {
		fmt.Fprintln(stderr, "ringserved:", err)
		return 1
	}

	var tenants *tenant.Registry
	switch {
	case *tenantsFile != "":
		tenants, err = tenant.Load(*tenantsFile, *allowAnon)
		if err != nil {
			fmt.Fprintln(stderr, "ringserved:", err)
			return 1
		}
	case !*allowAnon:
		fmt.Fprintln(stderr, "ringserved: -allowanon=false requires -tenants (otherwise no request could ever authenticate)")
		return 1
	default:
		tenants = tenant.NewAnonymous()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ringserved:", err)
		return 1
	}
	defer ln.Close()

	// Assemble the engine, serving layer, and (in cluster modes) the
	// cluster plane around the listener.
	engOpts := sweep.Options{
		Workers:  *workers,
		CacheDir: *cacheDir,
		Trace:    obs.Config{SampleEvery: *traceSample},
		Parallel: *parallel,
	}
	srvOpts := serve.Options{
		QueueDepth:  *queueDepth,
		MaxInFlight: *maxInFlight,
		Discipline:  disc,
		MaxDeadline: *maxDeadline,
		Tenants:     tenants,
	}
	mux := http.NewServeMux()
	role := "standalone"
	switch {
	case *coordMode:
		role = "coordinator"
	case *workerMode:
		role = "worker"
		if *workerID != "" {
			// Carry the worker's identity in the service field so a
			// cross-hop trace shows which worker executed the job.
			role = "worker:" + *workerID
		}
	}
	// One tracer and one logger per process, shared by the serving
	// layer and the cluster plane so a request's serve-side and
	// cluster-side spans land in the same store and every log line
	// carries the same service field.
	rt := reqtrace.NewTracer(role, *reqTraces)
	logger := olog.New(stderr, level, "ringserved")
	srvOpts.ReqTracer = rt
	srvOpts.Logger = logger
	var (
		coord *cluster.Coordinator
		wk    *cluster.Worker
	)
	switch {
	case *coordMode:
		coord = cluster.NewCoordinator(cluster.CoordinatorOptions{
			HeartbeatTTL: *hbTTL,
			ExecTimeout:  *execTimeout,
			MaxAttempts:  *execRetries,
			Tracer:       rt,
			Logger:       logger,
		})
		// The dispatcher replaces local execution for every job kind the
		// coordinator accepts; workers decide which kinds they support.
		engOpts.Executors = map[string]sweep.Executor{
			"":                coord.Execute,
			cluster.SynthKind: coord.Execute,
		}
		srvOpts.LookupFallback = coord.LookupFallback
		srvOpts.ExtraMetrics = coord.WriteMetrics
		srvOpts.ClusterStatus = func() any { return coord.Status() }
		srvOpts.FederateMetrics = coord.FederateMetrics
	case *workerMode:
		if *synthExec {
			engOpts.Executors = map[string]sweep.Executor{cluster.SynthKind: cluster.SynthExecutor}
		}
		adv := *advertise
		if adv == "" {
			adv = defaultAdvertise(ln.Addr())
		}
		id := *workerID
		if id == "" {
			id = adv
		}
		eng := sweep.New(engOpts)
		wk, err = cluster.NewWorker(cluster.WorkerOptions{
			ID:             id,
			Engine:         eng,
			Coordinator:    *joinURL,
			Advertise:      adv,
			HeartbeatEvery: *heartbeat,
			Tracer:         rt,
			Logger:         logger,
		})
		if err != nil {
			fmt.Fprintln(stderr, "ringserved:", err)
			return 1
		}
		srvOpts.Engine = eng
		srvOpts.LookupFallback = wk.LookupFallback
	default:
		if *synthExec {
			engOpts.Executors = map[string]sweep.Executor{cluster.SynthKind: cluster.SynthExecutor}
		}
	}
	if srvOpts.Engine == nil {
		srvOpts.Engine = sweep.New(engOpts)
	}
	eng := srvOpts.Engine
	if coord != nil {
		coord.BindEngine(eng)
		mux.Handle("/internal/v1/", coord.Handler())
	}
	if wk != nil {
		mux.Handle("/internal/v1/", wk.Handler())
	}
	srv := serve.New(srvOpts)
	mux.Handle("/", srv.Handler())

	// The profiling endpoints live on their own listener so the service
	// port never exposes them: the main handler uses a dedicated mux,
	// leaving the DefaultServeMux (where net/http/pprof registers) to
	// this debug server only.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "ringserved: pprof:", err)
			return 1
		}
		fmt.Fprintf(stdout, "ringserved: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(stderr, "ringserved: pprof:", err)
			}
		}()
		defer pln.Close()
	}

	tenantNote := "anonymous"
	if *tenantsFile != "" {
		n := len(tenants.All())
		if tenants.AllowAnon() {
			n-- // don't count the implicit anonymous tenant
		}
		tenantNote = fmt.Sprintf("%d tenants", n)
		if tenants.AllowAnon() {
			tenantNote += "+anon"
		}
	}
	httpSrv := &http.Server{Handler: mux}
	fmt.Fprintf(stdout, "ringserved: %s listening on %s (%d workers, queue %d, %s, %s)\n",
		role, ln.Addr(), eng.Workers(), *queueDepth, disc, tenantNote)

	// The worker's membership loop runs until drain begins, so the
	// leave fires before in-flight work finishes, steering the
	// coordinator away early.
	memberCtx, stopMember := context.WithCancel(context.Background())
	defer stopMember()
	memberDone := make(chan struct{})
	if wk != nil {
		go func() { defer close(memberDone); wk.Run(memberCtx) }()
	} else {
		close(memberDone)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ringserved:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: reject new work, finish what was admitted, then
	// close the listener and exit.
	fmt.Fprintln(stdout, "ringserved: draining")
	stopMember()
	<-memberDone
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(stderr, "ringserved: drain:", err)
		httpSrv.Close()
		return 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "ringserved: shutdown:", err)
		return 1
	}
	st := eng.Stats()
	fmt.Fprintf(stdout, "ringserved: drained (%d jobs done, %d computed, %.0f%% cache hits)\n",
		st.Done, st.Computed, 100*st.HitRate())
	return 0
}

// defaultAdvertise derives a dial-back URL from the listen address:
// wildcard hosts become the loopback (single-host fleets, tests, CI);
// multi-host deployments must pass -advertise explicitly.
func defaultAdvertise(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	if strings.Contains(host, ":") {
		host = "[" + host + "]"
	}
	return fmt.Sprintf("http://%s:%s", host, port)
}
