// Command ringserved runs the simulation-as-a-service HTTP layer: a
// long-lived daemon that accepts sweep jobs, batches, and named paper
// experiments over HTTP/JSON, schedules them through one shared
// memoizing engine, and streams progress as Server-Sent Events.
//
// Usage:
//
//	ringserved -addr :8080 -cachedir .servecache
//	ringserved -queue 128 -inflight 8 -discipline sjf
//
// Routes (see DESIGN.md §9):
//
//	POST /v1/jobs                  submit one simulation point
//	POST /v1/sweeps                submit a batch
//	GET  /v1/experiments           list named experiments
//	POST /v1/experiments/{name}    run a named experiment
//	GET  /v1/results/{hash}        idempotent lookup by content hash
//	GET  /v1/results/{hash}/trace  Perfetto trace of a traced run (needs -tracesample)
//	GET  /v1/events                live progress stream (SSE)
//	GET  /healthz, /metrics        liveness and Prometheus metrics
//
// SIGINT/SIGTERM begin a graceful drain: new submissions receive 503
// while queued and in-flight requests run to completion (bounded by
// -draintimeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the DefaultServeMux, served only on -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "engine worker pool size (0 = all CPUs)")
		cacheDir     = fs.String("cachedir", "", "persist results to this content-addressed cache directory")
		queueDepth   = fs.Int("queue", 64, "admission queue depth (overflow returns 429)")
		maxInFlight  = fs.Int("inflight", 0, "max concurrently executing requests (0 = all CPUs)")
		discipline   = fs.String("discipline", "fcfs", "admission queue discipline: fcfs | sjf")
		maxDeadline  = fs.Duration("maxdeadline", 2*time.Minute, "cap on client-requested deadlines")
		drainTimeout = fs.Duration("draintimeout", 30*time.Second, "max wait for in-flight work on shutdown")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		traceSample  = fs.Int("tracesample", 0, "trace computed jobs, recording every k-th transaction span (0 = tracing off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	disc, err := serve.ParseDiscipline(*discipline)
	if err != nil {
		fmt.Fprintln(stderr, "ringserved:", err)
		return 1
	}

	eng := sweep.New(sweep.Options{
		Workers:  *workers,
		CacheDir: *cacheDir,
		Trace:    obs.Config{SampleEvery: *traceSample},
	})
	srv := serve.New(serve.Options{
		Engine:      eng,
		QueueDepth:  *queueDepth,
		MaxInFlight: *maxInFlight,
		Discipline:  disc,
		MaxDeadline: *maxDeadline,
	})

	// The profiling endpoints live on their own listener so the service
	// port never exposes them: the main handler uses a dedicated mux,
	// leaving the DefaultServeMux (where net/http/pprof registers) to
	// this debug server only.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "ringserved: pprof:", err)
			return 1
		}
		fmt.Fprintf(stdout, "ringserved: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(stderr, "ringserved: pprof:", err)
			}
		}()
		defer pln.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ringserved:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "ringserved: listening on %s (%d workers, queue %d, %s)\n",
		ln.Addr(), eng.Workers(), *queueDepth, disc)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ringserved:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: reject new work, finish what was admitted, then
	// close the listener and exit.
	fmt.Fprintln(stdout, "ringserved: draining")
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(stderr, "ringserved: drain:", err)
		httpSrv.Close()
		return 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "ringserved: shutdown:", err)
		return 1
	}
	st := eng.Stats()
	fmt.Fprintf(stdout, "ringserved: drained (%d jobs done, %d computed, %.0f%% cache hits)\n",
		st.Done, st.Computed, 100*st.HitRate())
	return 0
}
