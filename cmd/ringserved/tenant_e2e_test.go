package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTenantsFile writes a minimal two-tenant config and returns its
// path.
func writeTenantsFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	doc := `{"tenants":[
		{"id":"batch","keys":["batch-key"],"max_queued":4,"max_in_flight":1},
		{"id":"inter","keys":["inter-key"],"weight":2}
	]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func authedPost(t *testing.T, url, key, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestServeTenantMode boots the daemon with a tenants file and strict
// authentication: keyless requests answer 401, keyed ones run, and
// the usage and metrics surfaces attribute them.
func TestServeTenantMode(t *testing.T) {
	url, cancel, exit, _ := startServer(t,
		"-workers", "2", "-tenants", writeTenantsFile(t), "-allowanon=false")
	defer func() { cancel(); <-exit }()

	job := `{"benchmark":"MP3D","cpus":8,"data_refs_per_cpu":100}`
	if resp, raw := authedPost(t, url+"/v1/jobs", "", job); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("keyless submit: status %d: %s", resp.StatusCode, raw)
	}
	if resp, raw := authedPost(t, url+"/v1/jobs", "inter-key", job); resp.StatusCode != http.StatusOK {
		t.Errorf("keyed submit: status %d: %s", resp.StatusCode, raw)
	}

	req, _ := http.NewRequest(http.MethodGet, url+"/v1/usage", nil)
	req.Header.Set("Authorization", "Bearer inter-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var usage struct {
		ID    string `json:"id"`
		Usage struct {
			Jobs uint64 `json:"jobs"`
		} `json:"usage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&usage); err != nil {
		t.Fatal(err)
	}
	if usage.ID != "inter" || usage.Usage.Jobs != 1 {
		t.Errorf("usage = %+v, want tenant inter with 1 job", usage)
	}

	// /metrics stays unauthenticated (scrape path) and carries the
	// tenant family.
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	if !strings.Contains(buf.String(), `ringsim_tenant_jobs_total{tenant="inter",state="computed"} 1`) {
		t.Error("metrics missing the inter tenant's computed count")
	}
}

func TestServeTenantFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-allowanon=false"}, &out, &out); code != 1 {
		t.Errorf("-allowanon=false without -tenants: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "-allowanon=false requires -tenants") {
		t.Errorf("missing validation message, got: %s", out.String())
	}
	out.Reset()
	if code := run(context.Background(), []string{"-tenants", "/does/not/exist.json"}, &out, &out); code != 1 {
		t.Errorf("missing tenants file: exit %d, want 1", code)
	}
}
