package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer: run() writes from the
// serving goroutine while the test polls.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+:\d+)`)

// startServer runs the daemon on an ephemeral port and returns its
// base URL, a cancel that delivers the shutdown signal, and the exit
// channel.
func startServer(t *testing.T, args ...string) (string, context.CancelFunc, <-chan int, *syncBuffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), stdout, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(stdout.String()); m != nil {
			return "http://" + m[1], cancel, exit, stdout
		}
		select {
		case code := <-exit:
			t.Fatalf("server exited %d before listening\nstdout: %s\nstderr: %s", code, stdout, stderr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened\nstdout: %s\nstderr: %s", stdout, stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeSubmitAndShutdown(t *testing.T) {
	url, cancel, exit, stdout := startServer(t, "-workers", "2")
	defer cancel()

	body := strings.NewReader(`{"benchmark":"MP3D","cpus":8,"data_refs_per_cpu":100}`)
	resp, err := http.Post(url+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var jr struct {
		Hash   string `json:"hash"`
		Source string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || jr.Hash == "" || jr.Source != "computed" {
		t.Fatalf("submit status %d result %+v", resp.StatusCode, jr)
	}

	// Health and metrics answer.
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, r.StatusCode)
		}
	}

	// The shutdown signal drains and exits 0.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d\nstdout: %s", code, stdout)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never exited after signal")
	}
	if out := stdout.String(); !strings.Contains(out, "drained") {
		t.Errorf("shutdown did not report drain:\n%s", out)
	}
}

func TestServeBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-discipline", "lifo"}, &out, &out); code != 1 {
		t.Errorf("bad discipline exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &out); code != 1 {
		t.Errorf("bad addr exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-nonsense"}, &out, &out); code != 2 {
		t.Errorf("bad flag exit %d, want 2", code)
	}
}

func TestServeJobFieldNames(t *testing.T) {
	// Guard the JSON contract the test workload depends on: a job
	// round-trips through the daemon using snake_case field names.
	url, cancel, exit, _ := startServer(t, "-workers", "1")
	defer func() { cancel(); <-exit }()
	payload := fmt.Sprintf(`{"benchmark":%q,"cpus":8,"data_refs_per_cpu":50,"seed":7}`, "MP3D")
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
	}
}
