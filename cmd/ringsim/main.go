// Command ringsim simulates one cache-coherent multiprocessor
// configuration — protocol, interconnect, benchmark, processor speed —
// and prints its measured performance, the quantities the paper plots:
// processor utilization, network utilization, and miss latency.
//
// Usage:
//
//	ringsim -protocol snoop-ring -bench MP3D -cpus 16 -cycle 5
//	ringsim -protocol snoop-bus  -bench WATER -cpus 32 -busmhz 100
//	ringsim -bench MP3D -cpus 16 -trace-out trace.json   # Perfetto trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/buildinfo"
	olog "repro/internal/obs/slog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		protocol = fs.String("protocol", "snoop-ring", "protocol: snoop-ring | directory-ring | sci-ring | snoop-bus")
		bench    = fs.String("bench", "MP3D", "benchmark: MP3D | WATER | CHOLESKY | FFT | WEATHER | SIMPLE")
		cpus     = fs.Int("cpus", 16, "processor count (must match a Table 2 profile)")
		cycle    = fs.Float64("cycle", 20, "processor cycle time in ns (paper sweeps 1-20)")
		ringMHz  = fs.Int("ringmhz", 500, "ring link clock in MHz (paper: 250 or 500)")
		ringBits = fs.Int("ringbits", 32, "ring data path width in bits")
		busMHz   = fs.Int("busmhz", 50, "bus clock in MHz for snoop-bus (paper: 50 or 100)")
		refs     = fs.Int("refs", 5000, "data references per processor (simulation length)")
		seed     = fs.Uint64("seed", 1, "random seed")
		list     = fs.Bool("list", false, "list available benchmark profiles and exit")
		traceIn  = fs.String("trace", "", "replay a recorded trace file (from tracegen) instead of a synthetic workload")
		traceOut = fs.String("trace-out", "", "write a Perfetto/Chrome trace of coherence transactions to this file (load at ui.perfetto.dev)")
		traceSmp = fs.Int("trace-sample", 0, "record every k-th transaction as a full span (0 = 64 when -trace-out is set)")
		parallel = fs.Int("parallel", 1, "partition the simulation across this many event-kernel shards (1 = sequential; uncovered configs fall back loudly)")
		segments = fs.Int("segments", 0, "partition the ring interconnect into this many segments (0 = classic global-slot ring; >= 2 selects the segmented model, directory-ring only)")
		version  = fs.Bool("version", false, "print build version and exit")
		logLevel = fs.String("loglevel", "info", "structured JSON log level on stderr: debug | info | warn | error")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintf(stdout, "ringsim %s\n", buildinfo.Read())
		return 0
	}
	level, lerr := olog.ParseLevel(*logLevel)
	if lerr != nil {
		fmt.Fprintln(stderr, "ringsim:", lerr)
		return 2
	}
	logger := olog.New(stderr, level, "ringsim")

	if *list {
		fmt.Fprintln(stdout, "benchmark profiles (Table 2):")
		for _, b := range repro.Benchmarks() {
			fmt.Fprintf(stdout, "  %-9s %d CPUs\n", b.Name, b.CPUs)
		}
		return 0
	}

	cfg := repro.Config{
		Protocol:       repro.Protocol(*protocol),
		Benchmark:      *bench,
		CPUs:           *cpus,
		ProcCycleNS:    *cycle,
		RingMHz:        *ringMHz,
		RingWidthBits:  *ringBits,
		BusMHz:         *busMHz,
		DataRefsPerCPU: *refs,
		Seed:           *seed,
		TraceSample:    *traceSmp,
		Parallel:       *parallel,
		RingSegments:   *segments,
	}
	if *traceOut != "" && cfg.TraceSample == 0 {
		cfg.TraceSample = 64
	}
	if *traceOut == "" && cfg.TraceSample != 0 {
		fmt.Fprintln(stderr, "ringsim: -trace-sample requires -trace-out")
		return 2
	}
	logger.Debug("simulation start", "protocol", *protocol, "bench", *bench,
		"cpus", *cpus, "refs", *refs, "seed", *seed, "parallel", *parallel)
	var res *repro.Result
	var err error
	if *traceIn != "" {
		res, err = repro.RunTrace(cfg, *traceIn)
	} else {
		res, err = repro.Run(cfg)
	}
	if err != nil {
		logger.Error("simulation failed", olog.KeyError, err.Error())
		fmt.Fprintln(stderr, "ringsim:", err)
		return 1
	}

	workloadDesc := fmt.Sprintf("%s/%d CPUs", *bench, *cpus)
	if *traceIn != "" {
		workloadDesc = "trace " + *traceIn
	}
	fmt.Fprintf(stdout, "configuration: %s, %s, %.1f ns processor cycle\n",
		*protocol, workloadDesc, *cycle)
	fmt.Fprintf(stdout, "  processor utilization : %6.1f %%\n", 100*res.ProcUtil)
	fmt.Fprintf(stdout, "  network utilization   : %6.1f %%\n", 100*res.NetworkUtil)
	fmt.Fprintf(stdout, "  avg miss latency      : %6.0f ns\n", res.MissLatencyNS)
	fmt.Fprintf(stdout, "  avg inv latency       : %6.0f ns\n", res.InvLatencyNS)
	fmt.Fprintf(stdout, "  execution time        : %6.1f us\n", res.ExecTimeUS)
	fmt.Fprintf(stdout, "  shared miss rate      : %6.2f %%\n", 100*res.SharedMissRate)
	fmt.Fprintf(stdout, "  total miss rate       : %6.2f %%\n", 100*res.TotalMissRate)
	fmt.Fprintf(stdout, "  misses / upgrades     : %d / %d\n", res.Misses, res.Upgrades)

	if *parallel > 1 {
		if res.ParallelFallback != "" {
			fmt.Fprintf(stdout, "  parallel execution    : fell back to sequential: %s\n", res.ParallelFallback)
		} else {
			var stall int64
			for _, ns := range res.BarrierStallNS {
				stall += ns
			}
			fmt.Fprintf(stdout, "  parallel execution    : %d partitions, %d windows, barrier stall %.2f ms total\n",
				res.Partitions, res.ParallelWindows, float64(stall)/1e6)
			if res.ParallelWindowPS > 0 {
				fmt.Fprintf(stdout, "  sharded interconnect  : %d ps lookahead window, %d cross-shard events over %d carrying windows\n",
					res.ParallelWindowPS, res.ParallelCrossEvents, res.ParallelCrossWindows)
			}
		}
	}

	if *traceOut != "" {
		if err := writeTrace(res, *traceOut); err != nil {
			fmt.Fprintln(stderr, "ringsim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written to %s (1 in %d transactions sampled); open at https://ui.perfetto.dev\n",
			*traceOut, cfg.TraceSample)
		for _, c := range res.SpanClasses() {
			fmt.Fprintf(stdout, "  %-17s %6d spans  mean %7.0f ns  p95 %7.0f ns\n",
				c.Class, c.Spans, c.MeanNS, c.P95NS)
		}
	}
	return 0
}

func writeTrace(res *repro.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
