// Command ringsim simulates one cache-coherent multiprocessor
// configuration — protocol, interconnect, benchmark, processor speed —
// and prints its measured performance, the quantities the paper plots:
// processor utilization, network utilization, and miss latency.
//
// Usage:
//
//	ringsim -protocol snoop-ring -bench MP3D -cpus 16 -cycle 5
//	ringsim -protocol snoop-bus  -bench WATER -cpus 32 -busmhz 100
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		protocol = flag.String("protocol", "snoop-ring", "protocol: snoop-ring | directory-ring | sci-ring | snoop-bus")
		bench    = flag.String("bench", "MP3D", "benchmark: MP3D | WATER | CHOLESKY | FFT | WEATHER | SIMPLE")
		cpus     = flag.Int("cpus", 16, "processor count (must match a Table 2 profile)")
		cycle    = flag.Float64("cycle", 20, "processor cycle time in ns (paper sweeps 1-20)")
		ringMHz  = flag.Int("ringmhz", 500, "ring link clock in MHz (paper: 250 or 500)")
		ringBits = flag.Int("ringbits", 32, "ring data path width in bits")
		busMHz   = flag.Int("busmhz", 50, "bus clock in MHz for snoop-bus (paper: 50 or 100)")
		refs     = flag.Int("refs", 5000, "data references per processor (simulation length)")
		seed     = flag.Uint64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list available benchmark profiles and exit")
		traceIn  = flag.String("trace", "", "replay a recorded trace file (from tracegen) instead of a synthetic workload")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmark profiles (Table 2):")
		for _, b := range repro.Benchmarks() {
			fmt.Printf("  %-9s %d CPUs\n", b.Name, b.CPUs)
		}
		return
	}

	cfg := repro.Config{
		Protocol:       repro.Protocol(*protocol),
		Benchmark:      *bench,
		CPUs:           *cpus,
		ProcCycleNS:    *cycle,
		RingMHz:        *ringMHz,
		RingWidthBits:  *ringBits,
		BusMHz:         *busMHz,
		DataRefsPerCPU: *refs,
		Seed:           *seed,
	}
	var res *repro.Result
	var err error
	if *traceIn != "" {
		res, err = repro.RunTrace(cfg, *traceIn)
	} else {
		res, err = repro.Run(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(1)
	}

	workloadDesc := fmt.Sprintf("%s/%d CPUs", *bench, *cpus)
	if *traceIn != "" {
		workloadDesc = "trace " + *traceIn
	}
	fmt.Printf("configuration: %s, %s, %.1f ns processor cycle\n",
		*protocol, workloadDesc, *cycle)
	fmt.Printf("  processor utilization : %6.1f %%\n", 100*res.ProcUtil)
	fmt.Printf("  network utilization   : %6.1f %%\n", 100*res.NetworkUtil)
	fmt.Printf("  avg miss latency      : %6.0f ns\n", res.MissLatencyNS)
	fmt.Printf("  avg inv latency       : %6.0f ns\n", res.InvLatencyNS)
	fmt.Printf("  execution time        : %6.1f us\n", res.ExecTimeUS)
	fmt.Printf("  shared miss rate      : %6.2f %%\n", 100*res.SharedMissRate)
	fmt.Printf("  total miss rate       : %6.2f %%\n", 100*res.TotalMissRate)
	fmt.Printf("  misses / upgrades     : %d / %d\n", res.Misses, res.Upgrades)
}
