package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSimulatesOneMachine(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "MP3D", "-cpus", "8", "-cycle", "10", "-refs", "500"},
		&out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"configuration: snoop-ring, MP3D/8 CPUs, 10.0 ns processor cycle",
		"processor utilization",
		"avg miss latency",
		"execution time",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, bench := range []string{"MP3D", "WATER", "CHOLESKY", "FFT"} {
		if !strings.Contains(out.String(), bench) {
			t.Errorf("-list output missing %s:\n%s", bench, out.String())
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bench", "NOSUCH"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "ringsim:") {
		t.Errorf("stderr: %s", errb.String())
	}
}
