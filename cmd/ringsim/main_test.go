package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSimulatesOneMachine(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "MP3D", "-cpus", "8", "-cycle", "10", "-refs", "500"},
		&out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"configuration: snoop-ring, MP3D/8 CPUs, 10.0 ns processor cycle",
		"processor utilization",
		"avg miss latency",
		"execution time",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, bench := range []string{"MP3D", "WATER", "CHOLESKY", "FFT"} {
		if !strings.Contains(out.String(), bench) {
			t.Errorf("-list output missing %s:\n%s", bench, out.String())
		}
	}
}

func TestRunTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errb bytes.Buffer
	code := run([]string{"-bench", "MP3D", "-cpus", "8", "-refs", "800",
		"-trace-out", path, "-trace-sample", "16"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "trace written to "+path) {
		t.Errorf("output missing trace summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "spans") {
		t.Errorf("output missing per-class span summary:\n%s", out.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
}

func TestRunTraceSampleRequiresTraceOut(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-trace-sample", "8"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-trace-out") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bench", "NOSUCH"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "ringsim:") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestRunVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-version"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "ringsim ") {
		t.Errorf("stdout: %q", out.String())
	}
}

func TestRunRejectsBadLogLevel(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-loglevel", "loud"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "log level") {
		t.Errorf("stderr: %s", errb.String())
	}
}
