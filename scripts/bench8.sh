#!/usr/bin/env bash
# bench8.sh — BENCH_8: request-tracing + structured-logging overhead (DESIGN.md §15).
#
# Compares two ringserved configurations:
#
#  - untraced: -reqtrace 0 -loglevel error  (request IDs only, logs off)
#  - traced:   default -reqtrace, -loglevel info — the production
#              setting: full span recording plus lifecycle/warning
#              logs (per-request access lines are debug-level; see
#              internal/serve instrument)
#
# Two workloads are measured:
#
#  1. Serving mix (GATED, <= 3%): cache-hit-dominated traffic with a
#     realistic computed fraction — each trial's pool holds JOBS
#     distinct jobs none of which are cached yet, giving a
#     JOBS/REQUESTS miss rate (~4%, hit rate ~0.96). This is the
#     production shape: most requests are cache hits at ~100µs, a few
#     compute for milliseconds.
#  2. Pure hot path (INFORMATIONAL): 100% cache hits against a warmed
#     8-job pool. Every request is just the serving path, so the
#     span-recording cost has nothing to amortize against; on a
#     single-core host this worst case sits above 3% by design and is
#     reported, not gated (see DESIGN.md §15 for the per-request
#     breakdown).
#
# Measurement discipline, learned the hard way on a single-core host:
# every mix trial boots a FRESH server pair (computing hundreds of
# jobs grows the live heap, and on one core the GC mark tail of a
# previous trial contaminates whatever runs next — fresh processes
# make trials identical and independent), the two modes run
# back-to-back within each trial so host drift hits both equally, and
# the best trial per mode wins.
#
# The other hard assertion: the result artifact for a fixed job is
# byte-identical between the two servers — observability must never
# perturb results.
#
# Usage: scripts/bench8.sh [out.json]   (default BENCH_8.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_8.json}"
REQUESTS="${REQUESTS:-6000}"
JOBS="${JOBS:-256}"
TRIALS="${TRIALS:-5}"
HOT_REQUESTS="${HOT_REQUESTS:-6000}"
HOT_TRIALS="${HOT_TRIALS:-3}"
PORT_U="${PORT_U:-18180}"
PORT_T="${PORT_T:-18181}"
TMP="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/ringserved" ./cmd/ringserved
go build -o "$TMP/ringload" ./cmd/ringload

JOB='{"benchmark":"MP3D","cpus":8,"data_refs_per_cpu":300,"seed":1993}'

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "bench8: server on :$1 never became healthy" >&2
  return 1
}

boot_pair() { # boot_pair -> sets U_PID T_PID
  "$TMP/ringserved" -addr "127.0.0.1:$PORT_U" -reqtrace 0 -loglevel error \
    >>"$TMP/untraced.out" 2>>"$TMP/untraced.err" &
  U_PID=$!
  "$TMP/ringserved" -addr "127.0.0.1:$PORT_T" -loglevel info \
    >>"$TMP/traced.out" 2>>"$TMP/traced.err" &
  T_PID=$!
  wait_healthy "$PORT_U"
  wait_healthy "$PORT_T"
  # Warm connections, allocator, and the 8-job hot pool on both.
  for port in "$PORT_U" "$PORT_T"; do
    "$TMP/ringload" -url "http://127.0.0.1:$port" -requests 64 -jobs 8 \
      -cpus 8 -refs 300 -concurrency 8 >/dev/null 2>&1
  done
}

kill_pair() {
  kill "$U_PID" "$T_PID" 2>/dev/null || true
  wait "$U_PID" "$T_PID" 2>/dev/null || true
}

# Phase 1 — pure hot path (informational), on its own fresh pair: the
# warmed pool only, so the heap stays small and trials are stable.
boot_pair
for t in $(seq 1 "$HOT_TRIALS"); do
  "$TMP/ringload" -url "http://127.0.0.1:$PORT_U" -requests "$HOT_REQUESTS" -jobs 8 \
    -cpus 8 -refs 300 -concurrency 8 -out "$TMP/hot-untraced-$t.json" >/dev/null 2>&1
  "$TMP/ringload" -url "http://127.0.0.1:$PORT_T" -requests "$HOT_REQUESTS" -jobs 8 \
    -cpus 8 -refs 300 -concurrency 8 -out "$TMP/hot-traced-$t.json" >/dev/null 2>&1
done

# The fixed job's result artifact from each server, for the
# byte-identity check.
curl -fsS -X POST -H 'Content-Type: application/json' -d "$JOB" \
  "http://127.0.0.1:$PORT_U/v1/jobs" >"$TMP/untraced.body"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$JOB" \
  "http://127.0.0.1:$PORT_T/v1/jobs" >"$TMP/traced.body"
kill_pair

# Phase 2 — serving mix (gated). Fresh servers per trial; both modes
# compute the trial's JOBS distinct jobs (-refs varies per trial so a
# pool is never inherited) and serve the rest from cache.
for t in $(seq 1 "$TRIALS"); do
  boot_pair
  refs=$((400 + t))
  "$TMP/ringload" -url "http://127.0.0.1:$PORT_U" -requests "$REQUESTS" -jobs "$JOBS" \
    -cpus 8 -refs "$refs" -concurrency 8 -out "$TMP/mix-untraced-$t.json" >/dev/null 2>&1
  "$TMP/ringload" -url "http://127.0.0.1:$PORT_T" -requests "$REQUESTS" -jobs "$JOBS" \
    -cpus 8 -refs "$refs" -concurrency 8 -out "$TMP/mix-traced-$t.json" >/dev/null 2>&1
  kill_pair
done

python3 - "$TMP" "$TRIALS" "$HOT_TRIALS" "$OUT" <<'EOF'
import hashlib, json, sys

tmp, trials, hot_trials, out = sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]

def best(prefix, label, n, min_hit):
    reports = [json.load(open(f"{tmp}/{prefix}-{label}-{t}.json")) for t in range(1, n + 1)]
    for r in reports:
        assert r["errors"] == 0, f"{prefix}-{label}: {r['errors']} request errors"
        assert r["cache_hit_rate"] > min_hit, \
            f"{prefix}-{label}: cache hit rate {r['cache_hit_rate']:.3f} < {min_hit}"
    return max(reports, key=lambda r: r["req_per_sec"])

def mode_doc(r):
    return {"req_per_sec": r["req_per_sec"], "p50_ms": r["p50_ms"],
            "p99_ms": r["p99_ms"], "cache_hit_rate": r["cache_hit_rate"]}

untraced = best("mix", "untraced", trials, 0.9)
traced = best("mix", "traced", trials, 0.9)
overhead = 1.0 - traced["req_per_sec"] / untraced["req_per_sec"]

hot_u = best("hot", "untraced", hot_trials, 0.99)
hot_t = best("hot", "traced", hot_trials, 0.99)
hot_overhead = 1.0 - hot_t["req_per_sec"] / hot_u["req_per_sec"]

bodies = [open(f"{tmp}/{m}.body", "rb").read() for m in ("untraced", "traced")]
identical = bodies[0] == bodies[1]
hashes = [hashlib.sha256(b).hexdigest() for b in bodies]

doc = {
    "workload": {"requests_per_trial": untraced["requests"],
                 "distinct_jobs_per_trial": untraced["distinct_jobs"], "trials": trials},
    "untraced": mode_doc(untraced),
    "traced": {**mode_doc(traced),
               "sample_request_id": traced.get("sample_request_id", "")},
    "overhead_frac": overhead,
    "hot_path": {"requests_per_trial": hot_u["requests"], "trials": hot_trials,
                 "untraced": mode_doc(hot_u), "traced": mode_doc(hot_t),
                 "overhead_frac_informational": hot_overhead},
    "artifact_sha256": hashes[0],
    "artifact_identical": identical,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"bench8: serving mix   untraced {untraced['req_per_sec']:.0f} req/s, "
      f"traced {traced['req_per_sec']:.0f} req/s, overhead {overhead:+.2%} (gate <= 3%)")
print(f"bench8: pure hot path untraced {hot_u['req_per_sec']:.0f} req/s, "
      f"traced {hot_t['req_per_sec']:.0f} req/s, overhead {hot_overhead:+.2%} (informational)")
assert identical, f"result artifact diverged under tracing: {hashes}"
assert overhead <= 0.03, f"tracing+logging overhead {overhead:.2%} > 3%"
print(f"bench8: artifacts byte-identical (sha256 {hashes[0][:16]}…), report in {out}")
EOF
