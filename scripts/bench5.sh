#!/usr/bin/env bash
# bench5.sh — BENCH_5: dispatch-plane scaling of the cluster subsystem.
#
# Boots a coordinator plus fleets of 1, 2 and 4 workers and pushes a
# cache-cold batch of fixed-service-time jobs (kind "sleep", enabled by
# -synthexec) through the coordinator's public API. Every job sleeps
# for -refs microseconds on whichever worker owns its hash, so the
# measured quantity is the throughput of the dispatch plane itself —
# placement, forwarding, the result relay — not the simulator, which a
# single-core CI host could never scale across processes anyway.
#
# Also asserts the replicated-result invariant end to end: the bytes a
# 2-worker fleet returns for a job are the bytes a standalone
# -synthexec daemon returns for the same job.
#
# Usage: scripts/bench5.sh [out.json]   (default BENCH_5.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_5.json}"
PORT_BASE="${PORT_BASE:-19080}"
REQUESTS="${REQUESTS:-40}"
REFS="${REFS:-200000}" # 200 ms synthetic service time per job
CONCURRENCY="${CONCURRENCY:-8}"
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/ringserved" ./cmd/ringserved
go build -o "$TMP/ringload" ./cmd/ringload

wait_healthz() {
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$1/healthz" >/dev/null && return 0
    sleep 0.1
  done
  echo "bench5: port $1 never became healthy" >&2
  return 1
}

wait_live() { # port, count
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$1/metrics" | grep -q "ringsim_cluster_workers{state=\"live\"} $2" && return 0
    sleep 0.1
  done
  echo "bench5: fleet on port $1 never reached $2 live workers" >&2
  return 1
}

# run_fleet <nworkers> <coordport> <outjson>
run_fleet() {
  local n="$1" cport="$2" out="$3" fleet_pids=()
  "$TMP/ringserved" -coordinator -synthexec -addr "127.0.0.1:$cport" \
    -workers 16 -inflight 16 -queue 256 -execretries 3 >"$TMP/coord_$n.log" 2>&1 &
  fleet_pids+=($!); PIDS+=($!)
  wait_healthz "$cport"
  for i in $(seq 1 "$n"); do
    "$TMP/ringserved" -worker -join "http://127.0.0.1:$cport" -synthexec \
      -addr "127.0.0.1:$((cport + i))" -workers 1 -heartbeat 200ms \
      -id "w$i" >"$TMP/worker_${n}_$i.log" 2>&1 &
    fleet_pids+=($!); PIDS+=($!)
  done
  wait_live "$cport" "$n"
  # -jobs == -requests: every submission is a distinct, cache-cold job.
  "$TMP/ringload" -url "http://127.0.0.1:$cport" -kind sleep -refs "$REFS" \
    -requests "$REQUESTS" -jobs "$REQUESTS" -concurrency "$CONCURRENCY" \
    -out "$out" >"$TMP/load_$n.log"
  curl -sf "http://127.0.0.1:$cport/metrics" >"$TMP/metrics_$n.txt"
  for pid in "${fleet_pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  for pid in "${fleet_pids[@]}"; do wait "$pid" 2>/dev/null || true; done
}

echo "bench5: measuring fleet sizes 1, 2, 4 ($REQUESTS jobs x ${REFS}us)"
run_fleet 1 "$PORT_BASE" "$TMP/fleet1.json"
run_fleet 2 "$((PORT_BASE + 10))" "$TMP/fleet2.json"
run_fleet 4 "$((PORT_BASE + 20))" "$TMP/fleet4.json"

# Byte-identity spot check: the same sleep job through a 2-worker fleet
# and through a standalone -synthexec daemon must serve identical
# metrics bytes under the same hash.
SPORT=$((PORT_BASE + 40)); CPORT=$((PORT_BASE + 50))
"$TMP/ringserved" -addr "127.0.0.1:$SPORT" -synthexec >"$TMP/solo.log" 2>&1 &
PIDS+=($!)
"$TMP/ringserved" -coordinator -synthexec -addr "127.0.0.1:$CPORT" -workers 8 >"$TMP/ccoord.log" 2>&1 &
PIDS+=($!)
wait_healthz "$SPORT"; wait_healthz "$CPORT"
for i in 1 2; do
  "$TMP/ringserved" -worker -join "http://127.0.0.1:$CPORT" -synthexec \
    -addr "127.0.0.1:$((CPORT + i))" -workers 1 -heartbeat 200ms -id "cw$i" >"$TMP/cw$i.log" 2>&1 &
  PIDS+=($!)
done
wait_live "$CPORT" 2
JOB='{"kind":"sleep","cpus":4,"data_refs_per_cpu":5000,"seed":1993}'
curl -sf -X POST -d "$JOB" "http://127.0.0.1:$SPORT/v1/jobs?full=1" >"$TMP/solo_res.json"
curl -sf -X POST -d "$JOB" "http://127.0.0.1:$CPORT/v1/jobs?full=1" >"$TMP/fleet_res.json"

python3 - "$TMP" "$OUT" "$REQUESTS" "$REFS" "$CONCURRENCY" <<'EOF'
import json, sys
tmp, out, requests, refs, conc = sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])

solo = json.load(open(f"{tmp}/solo_res.json"))
fleet = json.load(open(f"{tmp}/fleet_res.json"))
assert solo["hash"] == fleet["hash"], (solo["hash"], fleet["hash"])
assert solo["metrics"] == fleet["metrics"], "fleet artifact differs from single-node bytes"

fleets = []
base = None
for n in (1, 2, 4):
    rep = json.load(open(f"{tmp}/fleet{n}.json"))
    assert rep["errors"] == 0, (n, rep["errors"])
    rps = rep["req_per_sec"]
    if base is None:
        base = rps
    fleets.append({
        "workers": n,
        "req_per_sec": round(rps, 2),
        "wall_ms": round(1000.0 * requests / rps, 1),
        "p50_ms": rep["p50_ms"],
        "p99_ms": rep["p99_ms"],
        "speedup_vs_1": round(rps / base, 2),
    })

doc = {
    "workload": {"kind": "sleep", "service_time_us": refs,
                 "requests": requests, "distinct_jobs": requests,
                 "concurrency": conc},
    "note": ("fixed-service-time jobs via -synthexec: measures the dispatch plane "
             "(placement, forwarding, result relay), independent of host core count"),
    "fleets": fleets,
    "artifact_check": "fleet result byte-identical to single-node for hash " + solo["hash"],
}
json.dump(doc, open(out, "w"), indent=2)
open(out, "a").write("\n")
s2, s4 = fleets[1]["speedup_vs_1"], fleets[2]["speedup_vs_1"]
print(f"bench5: speedup 2w={s2}x 4w={s4}x -> {out}")
assert s2 >= 1.6, f"2-worker speedup {s2} < 1.6"
assert s4 >= 3.0, f"4-worker speedup {s4} < 3.0"
EOF
