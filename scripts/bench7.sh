#!/usr/bin/env bash
# bench7.sh — BENCH_7: parallel partitioned simulation kernel (DESIGN.md §14).
#
# Runs the ringbench parallelscale experiment: the covered-class
# machine (PRIVATE/64 on the directory protocol) simulated sequentially
# and across 2..P event-kernel partitions, timing each and comparing
# every parallel result field-for-field against the sequential
# reference. The assertions below enforce the contract:
#
#  1. Every partition count produces a result identical to sequential,
#     with no silent fallback, and zero cross-partition events (the
#     covered class is provably decoupled).
#  2. On hosts with >= 4 cores, >= 4 partitions deliver >= 2x the
#     sequential wall clock. On smaller hosts the speedup target is
#     recorded but not enforced — partitions can't outrun the cores
#     that run them.
#
# Usage: scripts/bench7.sh [out.json]   (default BENCH_7.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_7.json}"
REFS="${REFS:-2000}"      # calibration length; parallelscale stretches it 10x
PARALLEL="${PARALLEL:-1}" # 1 = sweep to the host default (>=4 partitions)
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/ringbench" ./cmd/ringbench
"$TMP/ringbench" -only parallelscale -refs "$REFS" -parallel "$PARALLEL" -json "$OUT"

python3 - "$OUT" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
ps = doc.get("parallel_scale")
assert ps, "parallelscale experiment produced no parallel_scale record"

points = ps["points"]
assert points and points[0]["partitions"] == 1, points
assert any(p["partitions"] >= 4 for p in points), \
    f"sweep never reached 4 partitions: {[p['partitions'] for p in points]}"

for p in points:
    assert p["identical"], f"P={p['partitions']} diverged from sequential"
    assert not p.get("fallback"), \
        f"P={p['partitions']} fell back: {p['fallback']}"
    if p["partitions"] > 1:
        assert p["windows"] > 0, f"P={p['partitions']} advanced no windows"
        assert p["cross_events"] == 0, \
            f"covered class posted {p['cross_events']} cross events"
        assert len(p["barrier_stall_ns"]) == p["partitions"], p

seq_s = ps["seq_wall_ns"] / 1e9
refs_per_sec = ps["refs_per_cpu"] * ps["cpus"] / seq_s
best = max((p for p in points if p["partitions"] >= 4),
           key=lambda p: p["speedup"])
print(f"bench7: sequential {seq_s:.2f}s ({refs_per_sec / 1e6:.2f}M refs/s), "
      f"P={best['partitions']} speedup {best['speedup']:.2f}x "
      f"on {ps['num_cpu']} cores, all results identical")
if ps["num_cpu"] >= 4:
    assert best["speedup"] >= 2.0, \
        f"{best['speedup']:.2f}x < 2x at P={best['partitions']} on {ps['num_cpu']} cores"
else:
    print(f"bench7: {ps['num_cpu']} host core(s) < 4 — "
          "the 2x speedup target needs cores and is recorded, not enforced")
EOF
