#!/usr/bin/env python3
"""benchdiff.py — compare two BENCH_*.json reports for throughput regressions.

Usage: benchdiff.py [--tolerance 0.05] [--absolute] baseline.json current.json

Extracts the comparable throughput metrics both reports carry and fails
(exit 1) when any of them regressed by more than the tolerance in the
current report. Two classes of metric:

 - Dimensionless ratios (parallel-kernel speedups): compared whenever
   the host that produced each report had the cores to make the ratio
   meaningful (num_cpu >= partitions). These transfer across machines,
   so they are the default CI gate.
 - Absolute throughput (sweep sim_ns/s, events/s, per-experiment ring
   cycles/s): only meaningful between runs on comparable hosts, so they
   are compared only under --absolute.

Boolean result-identity flags in parallel_scale and sharded_scale are
always enforced: a point that was byte-identical in the baseline must
stay identical.
"""

import argparse
import json
import sys


class SchemaError(Exception):
    """A report is structurally missing a key the comparison needs."""


def require(mapping, key, context):
    """Fetch a required key, raising SchemaError with its path if absent."""
    if not isinstance(mapping, dict) or key not in mapping:
        raise SchemaError(f"missing required key {context}.{key}")
    return mapping[key]


def load_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise SchemaError(f"cannot read report: {e}")
    except json.JSONDecodeError as e:
        raise SchemaError(f"not valid JSON: {e}")
    if not isinstance(doc, dict):
        raise SchemaError("top level is not a JSON object")
    return doc


def metrics(doc, absolute):
    """Yield (name, value, is_ratio) throughput metrics from a report."""
    sweep = doc.get("sweep") or {}
    if absolute:
        for key in ("sim_ns_per_sec", "events_per_sec"):
            if sweep.get(key):
                yield f"sweep.{key}", float(sweep[key]), False
        for p in doc.get("points") or []:
            if p.get("sim_ring_cycles_per_sec"):
                yield (f"point.{require(p, 'name', 'points[]')}.ring_cycles_per_sec",
                       float(p["sim_ring_cycles_per_sec"]), False)
    for key, ps in scale_records(doc):
        cores = ps.get("num_cpu", 0)
        if absolute and ps.get("seq_wall_ns"):
            refs = require(ps, "refs_per_cpu", key)
            cpus = require(ps, "cpus", key)
            yield (f"{key}.seq_refs_per_sec",
                   refs * cpus / (ps["seq_wall_ns"] / 1e9),
                   False)
        for p in ps.get("points") or []:
            parts = require(p, "partitions", f"{key}.points[]")
            if parts > 1 and cores >= parts:
                yield (f"{key}.p{parts}.speedup",
                       float(require(p, "speedup", f"{key}.points[]")),
                       True)


def scale_records(doc):
    """Yield the partition-scaling records a report carries, keyed by
    which experiment produced them (the private-class parallel_scale
    sweep and the segmented-interconnect sharded_scale sweep share a
    schema)."""
    for key in ("parallel_scale", "sharded_scale"):
        ps = doc.get(key)
        if ps:
            yield key, ps


def identity_flags(doc):
    return {(key, require(p, "partitions", f"{key}.points[]")):
            require(p, "identical", f"{key}.points[]")
            for key, ps in scale_records(doc)
            for p in ps.get("points") or []}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="max fractional regression before failing (default 0.05)")
    ap.add_argument("--absolute", action="store_true",
                    help="also compare host-dependent absolute throughput")
    args = ap.parse_args()

    try:
        base = load_report(args.baseline)
        cur = load_report(args.current)
    except SchemaError as e:
        print(f"benchdiff: {e}", file=sys.stderr)
        return 2

    failed = False

    try:
        base_ident, cur_ident = identity_flags(base), identity_flags(cur)
        for (key, parts), ok in sorted(base_ident.items()):
            now = cur_ident.get((key, parts))
            if ok and now is False:
                print(f"FAIL {key}.p{parts}.identical: true -> false")
                failed = True

        base_m = {name: (v, ratio) for name, v, ratio in metrics(base, args.absolute)}
        cur_m = {name: v for name, v, _ in metrics(cur, args.absolute)}
    except SchemaError as e:
        print(f"benchdiff: malformed report: {e} "
              f"(was the BENCH json produced by an older ringbench?)",
              file=sys.stderr)
        return 2
    compared = 0
    for name, (bv, _ratio) in sorted(base_m.items()):
        cv = cur_m.get(name)
        if cv is None or bv <= 0:
            continue
        compared += 1
        delta = cv / bv - 1.0
        mark = "ok"
        if delta < -args.tolerance:
            mark, failed = "FAIL", True
        print(f"{mark:>4} {name}: {bv:.4g} -> {cv:.4g} ({delta:+.1%})")
    if compared == 0:
        print("benchdiff: no comparable throughput metrics between the "
              "two reports (host too small for ratio metrics?); "
              "identity flags checked only")

    if failed:
        print(f"benchdiff: regression beyond {args.tolerance:.0%} tolerance",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
