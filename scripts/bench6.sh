#!/usr/bin/env bash
# bench6.sh — BENCH_6: multi-tenant serving (DESIGN.md §13).
#
# Two questions, answered with fixed-service-time jobs (kind "sleep",
# enabled by -synthexec) so the numbers measure the serving plane and
# not the simulator:
#
#  1. What does the tenancy layer cost when it is NOT used? The same
#     workload runs against an anonymous server and against a
#     tenant-enabled server with every request authenticating; the
#     keyed run must stay within 3% of anonymous throughput.
#  2. How does the shared queue behave as tenants multiply? The same
#     aggregate workload runs split across 1, 2 and 4 keyed tenants
#     (first tenant weight 2, rest weight 1) and the report records
#     per-tenant throughput and latency percentiles.
#
# Usage: scripts/bench6.sh [out.json]   (default BENCH_6.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_6.json}"
PORT_BASE="${PORT_BASE:-19180}"
REQUESTS="${REQUESTS:-80}"
REFS="${REFS:-20000}" # 20 ms synthetic service time per job
CONCURRENCY="${CONCURRENCY:-8}"
TMP="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/ringserved" ./cmd/ringserved
go build -o "$TMP/ringload" ./cmd/ringload

wait_healthz() {
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$1/healthz" >/dev/null && return 0
    sleep 0.1
  done
  echo "bench6: port $1 never became healthy" >&2
  return 1
}

# tenants_file <n> — n tenants t1..tn; t1 has weight 2, the rest 1.
tenants_file() {
  local n="$1" path="$TMP/tenants_$1.json" sep=""
  {
    printf '{"tenants": ['
    for i in $(seq 1 "$n"); do
      local w=1
      [ "$i" = 1 ] && w=2
      printf '%s{"id": "t%d", "keys": ["key%d"], "weight": %d}' "$sep" "$i" "$i" "$w"
      sep=", "
    done
    printf ']}\n'
  } >"$path"
  echo "$path"
}

# run_phase <port> <outjson> <ringload tenant args...> -- <ringserved args...>
run_phase() {
  local port="$1" out="$2"
  shift 2
  local load_args=() srv_args=()
  while [ "$1" != "--" ]; do load_args+=("$1"); shift; done
  shift
  srv_args=("$@")
  "$TMP/ringserved" -synthexec -addr "127.0.0.1:$port" -workers 4 -inflight 4 \
    -queue 256 "${srv_args[@]}" >"$TMP/srv_$port.log" 2>&1 &
  local spid=$!
  PIDS+=("$spid")
  wait_healthz "$port"
  # -jobs == -requests: every submission is a distinct, cache-cold job.
  "$TMP/ringload" -url "http://127.0.0.1:$port" -kind sleep -refs "$REFS" \
    -requests "$REQUESTS" -jobs "$REQUESTS" -concurrency "$CONCURRENCY" \
    "${load_args[@]}" -out "$out" >"$TMP/load_$port.log"
  kill "$spid" 2>/dev/null || true
  wait "$spid" 2>/dev/null || true
}

echo "bench6: anonymous vs keyed overhead ($REQUESTS jobs x ${REFS}us)"
run_phase "$PORT_BASE" "$TMP/anon.json" -- # no tenants file, keyless
TF1="$(tenants_file 1)"
run_phase $((PORT_BASE + 1)) "$TMP/keyed.json" -apikey key1 -- \
  -tenants "$TF1" -allowanon=false

echo "bench6: per-tenant shares at 1, 2, 4 tenants"
run_phase $((PORT_BASE + 2)) "$TMP/ten1.json" -tenants "t1=key1" -- \
  -tenants "$(tenants_file 1)" -allowanon=false
run_phase $((PORT_BASE + 3)) "$TMP/ten2.json" -tenants "t1=key1,t2=key2" -- \
  -tenants "$(tenants_file 2)" -allowanon=false
run_phase $((PORT_BASE + 4)) "$TMP/ten4.json" \
  -tenants "t1=key1,t2=key2,t3=key3,t4=key4" -- \
  -tenants "$(tenants_file 4)" -allowanon=false

python3 - "$TMP" "$OUT" "$REQUESTS" "$REFS" "$CONCURRENCY" <<'EOF'
import json, sys
tmp, out, requests, refs, conc = sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])

def load(name):
    rep = json.load(open(f"{tmp}/{name}.json"))
    assert rep["errors"] == 0 and rep.get("rejected", 0) == 0, (name, rep)
    return rep

anon, keyed = load("anon"), load("keyed")
overhead = 1.0 - keyed["req_per_sec"] / anon["req_per_sec"]

phases = []
for n in (1, 2, 4):
    rep = load(f"ten{n}")
    per = [{
        "tenant": t["label"],
        "requests": t["requests"],
        "p50_ms": t["p50_ms"],
        "p95_ms": t["p95_ms"],
        "p99_ms": t["p99_ms"],
    } for t in rep["tenants"]]
    assert len(per) == n, (n, per)
    phases.append({
        "tenants": n,
        "req_per_sec": round(rep["req_per_sec"], 2),
        "p50_ms": rep["p50_ms"],
        "p99_ms": rep["p99_ms"],
        "per_tenant": per,
    })

doc = {
    "workload": {"kind": "sleep", "service_time_us": refs,
                 "requests": requests, "distinct_jobs": requests,
                 "concurrency": conc},
    "note": ("fixed-service-time jobs via -synthexec: measures the tenancy layer "
             "(auth, token buckets, DRR fair queueing), independent of the simulator"),
    "anonymous_req_per_sec": round(anon["req_per_sec"], 2),
    "keyed_req_per_sec": round(keyed["req_per_sec"], 2),
    "tenancy_overhead": round(overhead, 4),
    "phases": phases,
}
json.dump(doc, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(f"bench6: tenancy overhead {overhead * 100:.2f}%, "
      f"shares at 4 tenants: {[t['requests'] for t in phases[2]['per_tenant']]} -> {out}")
assert overhead <= 0.03, f"tenancy overhead {overhead:.4f} > 3%"
EOF
