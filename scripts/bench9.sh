#!/usr/bin/env bash
# bench9.sh — BENCH_9: sharded-interconnect parallel simulation (DESIGN.md §16).
#
# Runs the ringbench shardedscale experiment: a SHARED workload
# (MP3D/32) on the directory protocol over the 8-segment ring,
# simulated sequentially and across 2/4/8 event-kernel shards with
# real coherence traffic crossing shard boundaries every window. The
# assertions below enforce the contract:
#
#  1. Every partition count produces an artifact whose sha256 equals
#     the sequential reference's, with no silent fallback.
#  2. Every parallel point carries cross-shard traffic (cross_events
#     > 0) through a lookahead-derived window (window_ps > 0) — the
#     boundary handoff demonstrably exercised, not decoupled.
#
# Speedup is recorded, never enforced: the window width is the
# boundary link's hop latency (~6 ns of simulated time), so execution
# is barrier-synchronization-bound and parallel runs are typically
# slower than sequential. The report states that honestly; benchdiff
# gates it against regression between runs on comparable hosts.
#
# Usage: scripts/bench9.sh [out.json]   (default BENCH_9.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_9.json}"
REFS="${REFS:-2000}" # calibration length; shardedscale stretches it 10x
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/ringbench" ./cmd/ringbench
"$TMP/ringbench" -only shardedscale -refs "$REFS" -json "$OUT"

python3 - "$OUT" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
ss = doc.get("sharded_scale")
assert ss, "shardedscale experiment produced no sharded_scale record"
assert ss["segments"] >= 2, ss
assert ss["seq_artifact_sha256"], "sequential reference has no artifact hash"

points = ss["points"]
assert points and points[0]["partitions"] == 1, points
assert any(p["partitions"] >= 4 for p in points), \
    f"sweep never reached 4 shards: {[p['partitions'] for p in points]}"

for p in points:
    assert p["identical"], f"P={p['partitions']} diverged from sequential"
    assert p["artifact_sha256"] == ss["seq_artifact_sha256"], \
        f"P={p['partitions']} artifact {p['artifact_sha256']} != sequential"
    assert not p.get("fallback"), \
        f"P={p['partitions']} fell back: {p['fallback']}"
    if p["partitions"] > 1:
        assert p["windows"] > 0, f"P={p['partitions']} advanced no windows"
        assert p["window_ps"] > 0, \
            f"P={p['partitions']} has no lookahead-derived window width"
        assert p["cross_events"] > 0, \
            f"P={p['partitions']} carried no cross-shard coherence traffic"
        assert len(p["barrier_stall_ns"]) == p["partitions"], p

seq_s = ss["seq_wall_ns"] / 1e9
refs_per_sec = ss["refs_per_cpu"] * ss["cpus"] / seq_s
busiest = max((p for p in points if p["partitions"] > 1),
              key=lambda p: p["cross_events_per_window"])
print(f"bench9: sequential {seq_s:.2f}s ({refs_per_sec / 1e6:.2f}M refs/s), "
      f"{ss['segments']} segments, window {points[-1]['window_ps']}ps, "
      f"up to {busiest['cross_events_per_window']:.2f} cross events/window "
      f"at P={busiest['partitions']} on {ss['num_cpu']} cores, "
      "all artifacts sha256-identical")
EOF
